package campaign

// Streaming-estimator equivalence at the campaign layer: the estimator
// checkpoint sidecar must be a pure restart accelerator. A campaign
// killed mid-flight and resumed from its checkpoint must write a journal
// byte-identical to the uninterrupted run's AND produce the identical
// refit sequence (every scheduled refit's full serialized state), across
// worker counts, with the measurement cache on or off, per strategy,
// faults included. And every checkpointed state must be bitwise-faithful:
// restoring it and refitting must match a from-scratch evt.Analyze of the
// journal's committed tail prefix.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/search"
)

// captureRefits returns an OnRefit hook that appends every refit state to
// dst — the campaign's refit sequence, in order.
func captureRefits(dst *[]evt.StreamState) func(evt.StreamState) error {
	return func(st evt.StreamState) error {
		*dst = append(*dst, st)
		return nil
	}
}

// streamKillConfig is equivConfig with an effectively unreachable loss
// promise. The cache-equivalence measurement stack's heavily duplicated
// perf distribution converges fast enough to satisfy strategyKillConfig's
// 1% before the late kill point, which would leave nothing to kill.
func streamKillConfig(seed int64) core.IterConfig {
	cfg := equivConfig(seed)
	cfg.AcceptLossPct = 1e-9
	return cfg
}

// runStreamUninterrupted runs one uninterrupted serial campaign under the
// cache-capable stack, capturing its refit sequence.
func runStreamUninterrupted(t *testing.T, name string, params search.Params, seed int64, withFaults bool, states *[]evt.StreamState) ([]byte, core.IterResult, error) {
	t.Helper()
	strat, err := search.New(name, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "full.journal")
	j, err := CreateJournal(path, strategyHeader(seed, search.Spec(name, params)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamKillConfig(seed)
	cfg.Strategy = strat
	cfg.OnRefit = captureRefits(states)
	res, iterErr := core.IterateContext(context.Background(), cfg,
		JournalRunner{Journal: j, Runner: cacheEquivStack(withFaults, nil)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, res, iterErr
}

// TestStreamCheckpointKillResumeMatchesUninterrupted kills a campaign per
// strategy at two points — mid-initial-batch, before any refit could
// write a checkpoint, and past the first estimation boundaries, where the
// sidecar holds real estimator state — then resumes from the journal plus
// the checkpoint serially and on 4- and 16-worker pools, cache off and
// on. The resumed journal must be byte-identical to the uninterrupted
// run's, and the killed run's refit sequence followed by the resumed
// run's must equal the uninterrupted sequence state-for-state.
func TestStreamCheckpointKillResumeMatchesUninterrupted(t *testing.T) {
	const seed = 3
	for _, withFaults := range []bool{false, true} {
		for _, spec := range strategyEquivSpecs() {
			specStr := search.Spec(spec.name, spec.params)
			var fullStates []evt.StreamState
			uninterrupted, fullRes, fullErr := runStreamUninterrupted(t, spec.name, spec.params, seed, withFaults, &fullStates)
			if fullErr != nil && !errors.Is(fullErr, core.ErrBudgetExhausted) {
				t.Fatalf("%s: uninterrupted run: %v", spec.name, fullErr)
			}
			strat, err := search.New(spec.name, spec.params, nil)
			if err != nil {
				t.Fatal(err)
			}
			if strat.TailSafe() && len(fullStates) == 0 {
				t.Fatalf("%s: tail-safe campaign produced no refits — sequence equality would be vacuous", spec.name)
			}
			if !strat.TailSafe() && len(fullStates) != 0 {
				t.Fatalf("%s: tail-unsafe campaign refitted %d times", spec.name, len(fullStates))
			}
			for _, killAt := range []int{57, 137} {
				name := fmt.Sprintf("%s-faults=%v-kill%d", spec.name, withFaults, killAt)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					path := filepath.Join(dir, "killed.journal")
					ckptPath := EstimatorCheckpointPath(path)

					// Kill: the campaign persists its checkpoint at every
					// refit and dies after killAt journaled draws.
					jk, err := CreateJournal(path, strategyHeader(seed, specStr))
					if err != nil {
						t.Fatal(err)
					}
					kstrat, err := search.New(spec.name, spec.params, nil)
					if err != nil {
						t.Fatal(err)
					}
					cfg := streamKillConfig(seed)
					cfg.Strategy = kstrat
					var killedStates []evt.StreamState
					capture := captureRefits(&killedStates)
					cfg.OnRefit = func(st evt.StreamState) error {
						if err := capture(st); err != nil {
							return err
						}
						return SaveEstimatorCheckpoint(ckptPath, st)
					}
					stack := core.ContextRunner(JournalRunner{Journal: jk, Runner: cacheEquivStack(withFaults, nil)})
					_, iterErr := core.IterateContext(context.Background(), cfg, killSerialAfter(stack, jk, killAt))
					if !errors.Is(iterErr, errKilled) {
						t.Fatalf("kill: err = %v", iterErr)
					}
					jk.Close()

					// The killed refit sequence must be a prefix of the
					// uninterrupted one, and the sidecar must hold its last
					// state — or not exist when the kill preceded all refits.
					if len(killedStates) > len(fullStates) ||
						(len(killedStates) > 0 && !reflect.DeepEqual(killedStates, fullStates[:len(killedStates)])) {
						t.Fatalf("killed run's %d refits are not a prefix of the uninterrupted %d", len(killedStates), len(fullStates))
					}
					ck, err := LoadEstimatorCheckpoint(ckptPath)
					if err != nil {
						t.Fatal(err)
					}
					switch {
					case len(killedStates) == 0 && ck != nil:
						t.Fatal("checkpoint file exists before any refit")
					case len(killedStates) > 0 && ck == nil:
						t.Fatal("refits ran but no checkpoint was persisted")
					case ck != nil && !reflect.DeepEqual(*ck, killedStates[len(killedStates)-1]):
						t.Fatal("sidecar does not hold the last refit's state")
					}
					if killAt == 137 && strat.TailSafe() && ck == nil {
						t.Fatal("kill past the estimation boundary left no checkpoint to restore")
					}

					for _, workers := range []int{0, 4, 16} {
						for _, withCache := range []bool{false, true} {
							// Reset the journal to the killed prefix; the
							// sidecar is untouched by resumes (capture-only
							// hook) and stays the crash-time checkpoint.
							if err := os.WriteFile(path, journalPrefix(t, uninterrupted, killAt), 0o644); err != nil {
								t.Fatal(err)
							}
							j, st, err := ResumeJournal(path, strategyHeader(seed, specStr))
							if err != nil {
								t.Fatal(err)
							}
							if st.Draws != killAt {
								t.Fatalf("recovered %d draws, want %d", st.Draws, killAt)
							}
							rcfg := streamKillConfig(seed)
							rcfg.Strategy, err = search.New(spec.name, spec.params, nil)
							if err != nil {
								t.Fatal(err)
							}
							rcfg.Resume = st.Results
							rcfg.ResumeDraws = st.Draws
							rcfg.ResumeLog = st.Log
							rcfg.StreamCheckpoint = ck
							var resumedStates []evt.StreamState
							rcfg.OnRefit = captureRefits(&resumedStates)
							var cache *core.Cache
							if withCache {
								cache = core.NewCache(0, nil)
							}
							var res core.IterResult
							if workers > 0 {
								pool, err := core.NewReplicatedPool(cacheEquivStack(withFaults, cache), workers)
								if err != nil {
									t.Fatal(err)
								}
								res, iterErr = core.IterateParallel(context.Background(), rcfg, pool, j.Commit)
							} else {
								res, iterErr = core.IterateContext(context.Background(), rcfg,
									JournalRunner{Journal: j, Runner: cacheEquivStack(withFaults, cache)})
							}
							if fmt.Sprint(iterErr) != fmt.Sprint(fullErr) {
								t.Fatalf("workers=%d cache=%v: resume err %v, uninterrupted %v", workers, withCache, iterErr, fullErr)
							}
							j.Close()
							resumed, err := os.ReadFile(path)
							if err != nil {
								t.Fatal(err)
							}
							if !bytes.Equal(resumed, uninterrupted) {
								t.Fatalf("workers=%d cache=%v: resumed journal differs from uninterrupted run's:\nresumed %d bytes\nuninterrupted %d bytes",
									workers, withCache, len(resumed), len(uninterrupted))
							}
							if res.Samples != fullRes.Samples || !reflect.DeepEqual(res.Best, fullRes.Best) {
								t.Fatalf("workers=%d cache=%v: resumed result (%d, %v) differs from uninterrupted (%d, %v)",
									workers, withCache, res.Samples, res.Best, fullRes.Samples, fullRes.Best)
							}
							// The refit sequence is seamless across the kill:
							// killed refits + resumed refits = uninterrupted
							// refits, state for state (threshold, order
							// statistics, interval, schedule, hash).
							whole := append(append([]evt.StreamState(nil), killedStates...), resumedStates...)
							if !reflect.DeepEqual(whole, fullStates) {
								t.Fatalf("workers=%d cache=%v: refit sequence differs: killed %d + resumed %d vs uninterrupted %d",
									workers, withCache, len(killedStates), len(resumedStates), len(fullStates))
							}
						}
					}
				})
			}
		}
	}
}

// bitsEqual compares two values structurally with float64s compared by
// bit pattern — the campaign-layer twin of the evt differential suite's
// comparator, so "bitwise-identical at refit boundaries" means exactly
// that here too.
func bitsEqual(a, b reflect.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !bitsEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !a.Field(i).CanInterface() {
				continue
			}
			if !bitsEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		if !a.CanInterface() {
			return true
		}
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

// TestStreamCheckpointDifferentialAtRefitBoundaries proves each persisted
// checkpoint is bitwise-faithful to the journal it rides next to: for
// every refit state a uniform campaign emitted, the journal's committed
// tail prefix of the same length hashes to the checkpoint's commit-order
// hash, and restoring the checkpoint and refitting yields a report
// bit-for-bit identical to a from-scratch evt.Analyze of that prefix —
// with injected faults leaving quarantine holes in the draw sequence and
// without.
func TestStreamCheckpointDifferentialAtRefitBoundaries(t *testing.T) {
	const seed = 11
	for _, withFaults := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%v", withFaults), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "diff.journal")
			j, err := CreateJournal(path, equivHeader(seed))
			if err != nil {
				t.Fatal(err)
			}
			cfg := strategyKillConfig(seed)
			var states []evt.StreamState
			cfg.OnRefit = captureRefits(&states)
			_, iterErr := core.IterateContext(context.Background(), cfg,
				JournalRunner{Journal: j, Runner: equivStack(withFaults)})
			if iterErr != nil && !errors.Is(iterErr, core.ErrBudgetExhausted) {
				t.Fatal(iterErr)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if len(states) < 2 {
				t.Fatalf("campaign emitted %d refit states, want several", len(states))
			}

			st, err := LoadJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			// Uniform baseline: every successful journaled draw is
			// tail-eligible, so the estimator's commit-order sample is the
			// journal's success records, in order.
			perfs := core.Perfs(st.Results)
			for i, cs := range states {
				if cs.N > len(perfs) {
					t.Fatalf("refit %d: checkpoint holds %d observations, journal has %d", i, cs.N, len(perfs))
				}
				prefix := perfs[:cs.N]
				if got := evt.CommitOrderHash(prefix); got != cs.Hash {
					t.Fatalf("refit %d: checkpoint hash %s, journal prefix hashes to %s", i, cs.Hash, got)
				}
				restored, err := evt.RestoreStream(cs, evt.StreamOptions{POT: cfg.POT})
				if err != nil {
					t.Fatalf("refit %d: restore: %v", i, err)
				}
				repStream, errStream := restored.Refit()
				repBatch, errBatch := evt.Analyze(prefix, cfg.POT)
				if fmt.Sprint(errStream) != fmt.Sprint(errBatch) {
					t.Fatalf("refit %d: stream err %v, batch err %v", i, errStream, errBatch)
				}
				if errStream == nil && !bitsEqual(reflect.ValueOf(repStream), reflect.ValueOf(repBatch)) {
					t.Fatalf("refit %d (n=%d): restored refit differs bitwise from batch Analyze:\nstream %+v\nbatch  %+v",
						i, cs.N, repStream, repBatch)
				}
			}
		})
	}
}

// TestStreamCheckpointHashMismatchRejected: a checkpoint whose
// commit-order hash does not match the journal it sits next to — wrong
// campaign, wrong seed, tampered file — must abort the resume instead of
// silently diverging the estimator from the sample.
func TestStreamCheckpointHashMismatchRejected(t *testing.T) {
	const seed, killAt = 3, 137
	path := filepath.Join(t.TempDir(), "tampered.journal")
	ckptPath := EstimatorCheckpointPath(path)
	j, err := CreateJournal(path, equivHeader(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := strategyKillConfig(seed)
	cfg.OnRefit = func(st evt.StreamState) error { return SaveEstimatorCheckpoint(ckptPath, st) }
	stack := core.ContextRunner(JournalRunner{Journal: j, Runner: equivStack(false)})
	if _, iterErr := core.IterateContext(context.Background(), cfg, killSerialAfter(stack, j, killAt)); !errors.Is(iterErr, errKilled) {
		t.Fatalf("kill: %v", iterErr)
	}
	j.Close()

	ck, err := LoadEstimatorCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint written before the kill")
	}
	ck.Hash = "deadbeefdeadbeef"

	jr, st, err := ResumeJournal(path, equivHeader(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	rcfg := strategyKillConfig(seed)
	rcfg.Resume = st.Results
	rcfg.ResumeDraws = st.Draws
	rcfg.ResumeLog = st.Log
	rcfg.StreamCheckpoint = ck
	_, iterErr := core.IterateContext(context.Background(), rcfg,
		JournalRunner{Journal: jr, Runner: equivStack(false)})
	if iterErr == nil || !bytes.Contains([]byte(iterErr.Error()), []byte("does not match")) {
		t.Fatalf("tampered checkpoint: err = %v, want hash mismatch", iterErr)
	}
}

// TestEstimatorCheckpointSaveLoad covers the sidecar file lifecycle: a
// missing checkpoint is (nil, nil), a saved one round-trips exactly, and
// a re-save atomically replaces it.
func TestEstimatorCheckpointSaveLoad(t *testing.T) {
	path := EstimatorCheckpointPath(filepath.Join(t.TempDir(), "c.journal"))
	ck, err := LoadEstimatorCheckpoint(path)
	if err != nil || ck != nil {
		t.Fatalf("missing checkpoint: (%v, %v), want (nil, nil)", ck, err)
	}
	st := evt.StreamState{
		N: 3, Hash: "0102030405060708",
		Sorted: []float64{1.5, 2.5, 4},
		Best:   4, Fitted: true, U: 2, TailCount: 2,
		UPBPoint: 5, UPBLo: 4.5, HiUnbounded: true,
		RefitCount: 1, LastRefitN: 3, NextRefitN: 6,
	}
	if err := SaveEstimatorCheckpoint(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEstimatorCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, st) {
		t.Fatalf("round-trip: %+v, want %+v", *got, st)
	}
	st.N, st.Sorted, st.RefitCount = 4, append(st.Sorted, 9), 2
	if err := SaveEstimatorCheckpoint(path, st); err != nil {
		t.Fatal(err)
	}
	got, err = LoadEstimatorCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 4 || got.RefitCount != 2 {
		t.Fatalf("re-save did not replace: %+v", got)
	}
}
