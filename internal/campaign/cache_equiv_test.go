package campaign

// Journal-level equivalence of the measurement cache: with a
// class-deterministic testbed (symmetric assignments measure identically —
// the property netdps guarantees and core.CachedRunner assumes), a
// campaign run with the cache enabled must write byte-identical journal
// bytes to one run without it, at any worker count. Errors are never
// memoized, so class-deterministic failures quarantine identically too.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/obs"
)

// cacheEquivPerf hashes the canonical form, so it is class-deterministic:
// exactly the determinism contract a CachedRunner needs from its testbed.
func cacheEquivPerf(a assign.Assignment) float64 {
	h := fnv.New64a()
	fmt.Fprint(h, a.CanonicalKey())
	return 1e6 * (1 + float64(h.Sum64()%1000)/1000)
}

var errCacheEquivDown = errors.New("testbed rejects this class")

// cacheEquivStack builds the measurement stack: a class-deterministic base
// (with, optionally, class-keyed permanent faults and class+attempt-keyed
// transient ones), the resilient retry layer, and — when cache is non-nil
// — the memoization layer outermost, exactly where cmd/optassign puts it.
func cacheEquivStack(withFaults bool, cache *core.Cache) core.ContextRunner {
	base := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if withFaults {
			h := fnv.New64a()
			fmt.Fprint(h, a.CanonicalKey())
			class := h.Sum64()
			if class%23 == 0 {
				return 0, errCacheEquivDown // permanent: every attempt fails
			}
			if class%5 == 0 && core.Attempt(ctx) == 1 {
				return 0, fmt.Errorf("transient glitch")
			}
		}
		return cacheEquivPerf(a), nil
	})
	r := core.ContextRunner(base)
	if withFaults {
		r = core.NewResilientRunner(core.AsRunner(r), core.ResilientConfig{
			MaxAttempts: 2,
			BaseDelay:   time.Nanosecond,
			MaxDelay:    time.Microsecond,
		})
	}
	if cache != nil {
		r = core.NewCachedContextRunner(r, cache, "cache-equiv-tb")
	}
	return r
}

// runCacheEquivSerial is the uncached serial baseline.
func runCacheEquivSerial(t *testing.T, seed int64, withFaults bool) ([]byte, core.IterResult, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.journal")
	j, err := CreateJournal(path, equivHeader(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, iterErr := core.IterateContext(context.Background(), equivConfig(seed),
		JournalRunner{Journal: j, Runner: cacheEquivStack(withFaults, nil)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, res, iterErr
}

// TestCachedJournalMatchesUncached runs the same campaign with the
// memoization cache on and off, serially and at 4 and 16 pool workers, and
// requires byte-identical journals and results — cache hits must be
// observationally invisible. The hit counter proves equality is not
// vacuous: the 3-task sample on the small test topology is overwhelmingly
// structural duplicates.
func TestCachedJournalMatchesUncached(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		for _, seed := range []int64{1, 12} {
			baseline, baseRes, baseErr := runCacheEquivSerial(t, seed, withFaults)
			for _, workers := range []int{1, 4, 16} {
				name := fmt.Sprintf("faults=%v-seed%d-workers%d", withFaults, seed, workers)
				t.Run(name, func(t *testing.T) {
					reg := obs.NewRegistry()
					cm := core.NewCacheMetrics(reg)
					cache := core.NewCache(0, cm)
					cached := cacheEquivStack(withFaults, cache)

					path := filepath.Join(t.TempDir(), "cached.journal")
					j, err := CreateJournal(path, equivHeader(seed))
					if err != nil {
						t.Fatal(err)
					}
					var res core.IterResult
					var iterErr error
					if workers > 1 {
						pool, err := core.NewReplicatedPool(cached, workers)
						if err != nil {
							t.Fatal(err)
						}
						res, iterErr = core.IterateParallel(context.Background(), equivConfig(seed), pool, j.Commit)
					} else {
						res, iterErr = core.IterateContext(context.Background(), equivConfig(seed),
							JournalRunner{Journal: j, Runner: cached})
					}
					if err := j.Close(); err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(iterErr) != fmt.Sprint(baseErr) {
						t.Fatalf("iterate error %v, uncached baseline %v", iterErr, baseErr)
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(data, baseline) {
						t.Fatalf("cached journal differs from uncached baseline:\ncached %d bytes\nbaseline %d bytes",
							len(data), len(baseline))
					}
					if res.Samples != baseRes.Samples || !reflect.DeepEqual(res.Best, baseRes.Best) {
						t.Fatalf("result (%d, %v) differs from baseline (%d, %v)",
							res.Samples, res.Best, baseRes.Samples, baseRes.Best)
					}
					if cm.Hits.Value() == 0 {
						t.Error("cache recorded no hits: the equivalence check proved nothing")
					}
				})
			}
		}
	}
}
