package campaign

// Strategy-level journal equivalence: an explicitly configured uniform
// strategy must be observationally absent (byte-identical journals to the
// historical nil-strategy path, at any worker count, cache on or off,
// faults or not), and every strategy — stateful or not — must survive a
// mid-campaign kill and -resume with a journal byte-identical to its
// uninterrupted run, including kills past the first estimation boundary
// where the committed-horizon replay actually matters.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"optassign/internal/core"
	"optassign/internal/search"
)

// strategyHeader is equivHeader plus the strategy spec the journal pins.
func strategyHeader(seed int64, spec string) JournalHeader {
	h := equivHeader(seed)
	h.Strategy = spec
	return h
}

// TestUniformStrategyJournalMatchesNilStrategy: configuring the uniform
// strategy explicitly must write byte-identical journals to the legacy
// nil-strategy campaign, across worker counts, with and without the
// measurement cache, with and without injected faults.
func TestUniformStrategyJournalMatchesNilStrategy(t *testing.T) {
	const seed = 12
	for _, withFaults := range []bool{false, true} {
		baseline, baseRes, baseErr := runCacheEquivSerial(t, seed, withFaults)
		for _, withCache := range []bool{false, true} {
			for _, workers := range []int{1, 4, 16} {
				name := fmt.Sprintf("faults=%v-cache=%v-workers%d", withFaults, withCache, workers)
				t.Run(name, func(t *testing.T) {
					strat, err := search.New("uniform", nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					var cache *core.Cache
					if withCache {
						cache = core.NewCache(0, nil)
					}
					stack := cacheEquivStack(withFaults, cache)
					path := filepath.Join(t.TempDir(), "uniform.journal")
					j, err := CreateJournal(path, strategyHeader(seed, search.Spec("uniform", nil)))
					if err != nil {
						t.Fatal(err)
					}
					cfg := equivConfig(seed)
					cfg.Strategy = strat
					var res core.IterResult
					var iterErr error
					if workers > 1 {
						pool, err := core.NewReplicatedPool(stack, workers)
						if err != nil {
							t.Fatal(err)
						}
						res, iterErr = core.IterateParallel(context.Background(), cfg, pool, j.Commit)
					} else {
						res, iterErr = core.IterateContext(context.Background(), cfg,
							JournalRunner{Journal: j, Runner: stack})
					}
					if err := j.Close(); err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(iterErr) != fmt.Sprint(baseErr) {
						t.Fatalf("iterate error %v, baseline %v", iterErr, baseErr)
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(data, baseline) {
						t.Fatalf("explicit-uniform journal differs from nil-strategy baseline:\nuniform %d bytes\nbaseline %d bytes",
							len(data), len(baseline))
					}
					if res.Samples != baseRes.Samples || !reflect.DeepEqual(res.Best, baseRes.Best) {
						t.Fatalf("result (%d, %v) differs from baseline (%d, %v)",
							res.Samples, res.Best, baseRes.Samples, baseRes.Best)
					}
				})
			}
		}
	}
}

// strategyEquivSpecs are the kill/resume test's strategy configurations.
// Parameters are scaled to the tiny equivConfig campaign (Ninit=100,
// Ndelta=30, MaxSamples=250) so the adaptive strategies actually leave
// their init phases before the budget ends. Stratified gets its
// enumeration capped into rejection mode: the 8-context test topology has
// so few canonical classes that enumerated passes would serve the same
// handful of representative values over and over and degenerate the fit.
func strategyEquivSpecs() []struct {
	name   string
	params search.Params
} {
	return []struct {
		name   string
		params search.Params
	}{
		{"uniform", nil},
		{"stratified", search.Params{"classes": 4, "retries": 8}},
		{"greedy", search.Params{"init": 40, "explore": 0.25}},
		{"anneal", search.Params{"init": 40, "decay": 0.99}},
	}
}

// strategyKillConfig is equivConfig with an unreachable 1% loss promise,
// so every campaign runs past the first estimation boundary and the
// killAt=137 case genuinely exercises the committed-horizon replay.
func strategyKillConfig(seed int64) core.IterConfig {
	cfg := equivConfig(seed)
	cfg.AcceptLossPct = 1
	return cfg
}

// runStrategyJournaled runs one uninterrupted serial campaign under the
// given strategy and returns the journal bytes and result.
func runStrategyJournaled(t *testing.T, name string, params search.Params, seed int64, withFaults bool) ([]byte, core.IterResult, error) {
	t.Helper()
	strat, err := search.New(name, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "full.journal")
	j, err := CreateJournal(path, strategyHeader(seed, search.Spec(name, params)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := strategyKillConfig(seed)
	cfg.Strategy = strat
	res, iterErr := core.IterateContext(context.Background(), cfg,
		JournalRunner{Journal: j, Runner: equivStack(withFaults)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, res, iterErr
}

// TestStrategyKillResumeMatchesUninterrupted kills a campaign per strategy
// at two points — mid-initial-batch and past the first estimation
// boundary, where resume must replay the journal through the strategy with
// the original committed horizons — then resumes serially and on a
// 4-worker pool, requiring the final journal to be byte-identical to the
// uninterrupted run's.
func TestStrategyKillResumeMatchesUninterrupted(t *testing.T) {
	const seed = 3
	for _, withFaults := range []bool{false, true} {
		for _, spec := range strategyEquivSpecs() {
			specStr := search.Spec(spec.name, spec.params)
			uninterrupted, fullRes, fullErr := runStrategyJournaled(t, spec.name, spec.params, seed, withFaults)
			if fullErr != nil && !errors.Is(fullErr, core.ErrBudgetExhausted) {
				t.Fatalf("%s: uninterrupted run: %v", spec.name, fullErr)
			}
			for _, killAt := range []int{57, 137} {
				name := fmt.Sprintf("%s-faults=%v-kill%d", spec.name, withFaults, killAt)
				t.Run(name, func(t *testing.T) {
					// Kill: the campaign dies after killAt journaled draws.
					path := filepath.Join(t.TempDir(), "killed.journal")
					jk, err := CreateJournal(path, strategyHeader(seed, specStr))
					if err != nil {
						t.Fatal(err)
					}
					strat, err := search.New(spec.name, spec.params, nil)
					if err != nil {
						t.Fatal(err)
					}
					cfg := strategyKillConfig(seed)
					cfg.Strategy = strat
					stack := core.ContextRunner(JournalRunner{Journal: jk, Runner: equivStack(withFaults)})
					_, iterErr := core.IterateContext(context.Background(), cfg, killSerialAfter(stack, jk, killAt))
					if !errors.Is(iterErr, errKilled) {
						t.Fatalf("kill: err = %v", iterErr)
					}
					jk.Close()

					for _, workers := range []int{0, 4} {
						// Resume with a fresh strategy instance: its state must
						// be rebuilt entirely from the journal replay.
						j, st, err := ResumeJournal(path, strategyHeader(seed, specStr))
						if err != nil {
							t.Fatal(err)
						}
						if st.Draws != killAt {
							t.Fatalf("recovered %d draws, want %d", st.Draws, killAt)
						}
						rcfg := strategyKillConfig(seed)
						rcfg.Strategy, err = search.New(spec.name, spec.params, nil)
						if err != nil {
							t.Fatal(err)
						}
						rcfg.Resume = st.Results
						rcfg.ResumeDraws = st.Draws
						rcfg.ResumeLog = st.Log
						var res core.IterResult
						if workers > 0 {
							pool, err := core.NewReplicatedPool(equivStack(withFaults), workers)
							if err != nil {
								t.Fatal(err)
							}
							res, iterErr = core.IterateParallel(context.Background(), rcfg, pool, j.Commit)
						} else {
							res, iterErr = core.IterateContext(context.Background(), rcfg,
								JournalRunner{Journal: j, Runner: equivStack(withFaults)})
						}
						if fmt.Sprint(iterErr) != fmt.Sprint(fullErr) {
							t.Fatalf("workers=%d: resume err %v, uninterrupted %v", workers, iterErr, fullErr)
						}
						j.Close()
						resumed, err := os.ReadFile(path)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(resumed, uninterrupted) {
							t.Fatalf("workers=%d: resumed journal differs from uninterrupted run's:\nresumed %d bytes\nuninterrupted %d bytes",
								workers, len(resumed), len(uninterrupted))
						}
						if res.Samples != fullRes.Samples || !reflect.DeepEqual(res.Best, fullRes.Best) {
							t.Fatalf("workers=%d: resumed result (%d, %v) differs from uninterrupted (%d, %v)",
								workers, res.Samples, res.Best, fullRes.Samples, fullRes.Best)
						}
						// Reset the journal file for the next execution mode.
						if workers == 0 {
							if err := os.WriteFile(path, journalPrefix(t, uninterrupted, killAt), 0o644); err != nil {
								t.Fatal(err)
							}
						}
					}
				})
			}
		}
	}
}

// journalPrefix returns the header plus the first k entry lines of a
// journal — the state a campaign killed after k journaled draws leaves
// behind.
func journalPrefix(t *testing.T, data []byte, k int) []byte {
	t.Helper()
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < k+1 {
		t.Fatalf("journal has %d lines, need %d", len(lines), k+1)
	}
	return bytes.Join(lines[:k+1], nil)
}

// TestResumeRejectsStrategyMismatch: a journal written under one strategy
// must refuse to resume under another — the draw sequences would diverge
// silently otherwise.
func TestResumeRejectsStrategyMismatch(t *testing.T) {
	const seed = 3
	path := filepath.Join(t.TempDir(), "strat.journal")
	j, err := CreateJournal(path, strategyHeader(seed, "stratified"))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := search.New("stratified", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := equivConfig(seed)
	cfg.Strategy = strat
	stack := core.ContextRunner(JournalRunner{Journal: j, Runner: equivStack(false)})
	if _, iterErr := core.IterateContext(context.Background(), cfg, killSerialAfter(stack, j, 40)); !errors.Is(iterErr, errKilled) {
		t.Fatalf("kill: %v", iterErr)
	}
	j.Close()

	if _, _, err := ResumeJournal(path, strategyHeader(seed, "")); err == nil {
		t.Fatal("resume as uniform accepted a stratified journal")
	}
	if _, _, err := ResumeJournal(path, strategyHeader(seed, "greedy(init=40)")); err == nil {
		t.Fatal("resume as greedy accepted a stratified journal")
	}
	if _, _, err := ResumeJournal(path, strategyHeader(seed, "stratified")); err != nil {
		t.Fatalf("matching strategy refused: %v", err)
	}
}

// TestResumeReplayDetectsWrongStrategyState: even with a matching header,
// the replay verifies every regenerated draw against the journal — a
// strategy with different parameters diverges and must be caught, not
// silently continued.
func TestResumeReplayDetectsWrongStrategyState(t *testing.T) {
	const seed = 3
	path := filepath.Join(t.TempDir(), "greedy.journal")
	spec := search.Params{"init": 40, "explore": 0.25}
	j, err := CreateJournal(path, strategyHeader(seed, search.Spec("greedy", spec)))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := search.New("greedy", spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := strategyKillConfig(seed)
	cfg.Strategy = strat
	stack := core.ContextRunner(JournalRunner{Journal: j, Runner: equivStack(false)})
	if _, iterErr := core.IterateContext(context.Background(), cfg, killSerialAfter(stack, j, 137)); !errors.Is(iterErr, errKilled) {
		t.Fatalf("kill: %v", iterErr)
	}
	j.Close()

	jr, st, err := ResumeJournal(path, strategyHeader(seed, search.Spec("greedy", spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	rcfg := strategyKillConfig(seed)
	// Same strategy family, different parameters: the header check cannot
	// see it (the caller lied about the spec), the replay must.
	rcfg.Strategy, err = search.New("greedy", search.Params{"init": 10, "explore": 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Resume = st.Results
	rcfg.ResumeDraws = st.Draws
	rcfg.ResumeLog = st.Log
	_, iterErr := core.IterateContext(context.Background(), rcfg,
		JournalRunner{Journal: jr, Runner: equivStack(false)})
	if iterErr == nil || !bytes.Contains([]byte(iterErr.Error()), []byte("diverged")) {
		t.Fatalf("replay under wrong parameters: err = %v, want divergence", iterErr)
	}

	// And a non-uniform strategy without the draw log must be refused.
	ncfg := strategyKillConfig(seed)
	ncfg.Strategy, err = search.New("greedy", spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ncfg.Resume = st.Results
	ncfg.ResumeDraws = st.Draws
	_, iterErr = core.IterateContext(context.Background(), ncfg,
		JournalRunner{Journal: jr, Runner: equivStack(false)})
	if iterErr == nil || !bytes.Contains([]byte(iterErr.Error()), []byte("ResumeLog")) {
		t.Fatalf("log-free non-uniform resume: err = %v, want ResumeLog requirement", iterErr)
	}
}
