package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"optassign/internal/evt"
)

// Estimator checkpoints are the streaming counterpart of the write-ahead
// journal: the journal persists every measurement, the checkpoint
// persists the tail estimator's state at each scheduled refit, so a
// resumed campaign restores its POT state (order statistics, threshold,
// interval, refit schedule) and feeds only the post-checkpoint journal
// delta instead of rebuilding from the whole sample. The checkpoint is a
// sidecar next to the journal — one JSON document, rewritten atomically
// at each refit — because unlike the journal it is a snapshot, not a
// log: only the latest state matters, and a half-written snapshot must
// never be loadable.
//
// Crash ordering is safe in one direction only: measurements hit the
// journal before the refit that includes them, so at any crash the
// journal is at or ahead of the checkpoint. Resume verifies the rest —
// the checkpoint's commit-order hash must match the journal's replayed
// prefix (see core.IterConfig.StreamCheckpoint).

// EstimatorCheckpointPath is the sidecar path for a journal: the journal
// path with ".estimator" appended.
func EstimatorCheckpointPath(journalPath string) string {
	return journalPath + ".estimator"
}

// SaveEstimatorCheckpoint atomically replaces the checkpoint at path
// with st: the state is written to a temporary file in the same
// directory, synced, renamed over the target, and the parent directory
// is synced, so a crash at any instant leaves either the previous or the
// new checkpoint fully intact. Without the final directory sync the
// rename itself could be lost on power failure on some filesystems —
// the file's bytes durable but the name still pointing at the old inode,
// or at nothing.
func SaveEstimatorCheckpoint(path string, st evt.StreamState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: estimator checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(st); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: encoding estimator checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: syncing estimator checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: closing estimator checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: installing estimator checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("campaign: syncing checkpoint directory: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadEstimatorCheckpoint reads the checkpoint at path. A missing file
// is not an error — it returns (nil, nil): a campaign journaled before
// its first refit, or by a build without streaming checkpoints, simply
// resumes by re-feeding the replayed sample.
func LoadEstimatorCheckpoint(path string) (*evt.StreamState, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: estimator checkpoint: %w", err)
	}
	var st evt.StreamState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("campaign: decoding estimator checkpoint %s: %w", path, err)
	}
	return &st, nil
}
