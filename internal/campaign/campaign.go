// Package campaign persists measurement campaigns: the (assignment,
// performance) records a statistical study is built from. On a real
// machine a 5000-assignment campaign takes ~2 hours of testbed time (§5.4
// of the paper), so being able to save, reload, merge and re-analyze
// campaigns without re-running them is a first-class workflow. The format
// is JSON-lines with a header record, self-describing and diff-friendly.
package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

// Header is the campaign's first JSON line.
type Header struct {
	Format    int         `json:"format"`
	Benchmark string      `json:"benchmark,omitempty"`
	Topo      t2.Topology `json:"topology"`
	Seed      int64       `json:"seed,omitempty"`
	Notes     string      `json:"notes,omitempty"`
}

// Record is one measured assignment.
type Record struct {
	Perf float64 `json:"perf"`
	Ctx  []int   `json:"ctx"`
}

// Campaign is a measurement campaign in memory.
type Campaign struct {
	Header  Header
	Records []Record
}

// New starts an empty campaign for the given metadata.
func New(benchmark string, topo t2.Topology, seed int64) *Campaign {
	return &Campaign{Header: Header{Format: FormatVersion, Benchmark: benchmark, Topo: topo, Seed: seed}}
}

// Add appends one measured assignment.
func (c *Campaign) Add(a assign.Assignment, perf float64) {
	c.Records = append(c.Records, Record{Perf: perf, Ctx: append([]int(nil), a.Ctx...)})
}

// AddResults appends a batch of core sample results.
func (c *Campaign) AddResults(results []core.SampleResult) {
	for _, r := range results {
		c.Add(r.Assignment, r.Perf)
	}
}

// Len returns the number of records.
func (c *Campaign) Len() int { return len(c.Records) }

// Perfs extracts the performance column, the estimator's input.
func (c *Campaign) Perfs() []float64 {
	out := make([]float64, len(c.Records))
	for i, r := range c.Records {
		out[i] = r.Perf
	}
	return out
}

// Results converts the campaign back into core sample results.
func (c *Campaign) Results() []core.SampleResult {
	out := make([]core.SampleResult, len(c.Records))
	for i, r := range c.Records {
		out[i] = core.SampleResult{
			Assignment: assign.Assignment{Topo: c.Header.Topo, Ctx: append([]int(nil), r.Ctx...)},
			Perf:       r.Perf,
		}
	}
	return out
}

// Validate checks the header and that every record's assignment is valid
// on the campaign's topology.
func (c *Campaign) Validate() error {
	if c.Header.Format != FormatVersion {
		return fmt.Errorf("campaign: unsupported format %d", c.Header.Format)
	}
	if err := c.Header.Topo.Validate(); err != nil {
		return err
	}
	for i, r := range c.Records {
		a := assign.Assignment{Topo: c.Header.Topo, Ctx: r.Ctx}
		if err := a.Validate(); err != nil {
			return fmt.Errorf("campaign: record %d: %w", i, err)
		}
		if r.Perf <= 0 {
			return fmt.Errorf("campaign: record %d: non-positive performance %v", i, r.Perf)
		}
	}
	return nil
}

// Save writes the campaign as JSON lines: header first, one record per
// line after it.
func (c *Campaign) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(c.Header); err != nil {
		return fmt.Errorf("campaign: encoding header: %w", err)
	}
	for i := range c.Records {
		if err := enc.Encode(c.Records[i]); err != nil {
			return fmt.Errorf("campaign: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Load reads a campaign written by Save and validates it.
func Load(r io.Reader) (*Campaign, error) {
	dec := json.NewDecoder(r)
	var c Campaign
	if err := dec.Decode(&c.Header); err != nil {
		return nil, fmt.Errorf("campaign: reading header: %w", err)
	}
	for {
		var rec Record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: reading record %d: %w", len(c.Records), err)
		}
		c.Records = append(c.Records, rec)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Merge combines campaigns over the same topology into one (e.g. several
// measurement sessions of the same workload). Benchmark names must agree
// when both are set.
func Merge(cs ...*Campaign) (*Campaign, error) {
	if len(cs) == 0 {
		return nil, errors.New("campaign: nothing to merge")
	}
	out := &Campaign{Header: cs[0].Header}
	for _, c := range cs {
		if c.Header.Topo != out.Header.Topo {
			return nil, fmt.Errorf("campaign: topology mismatch: %v vs %v", c.Header.Topo, out.Header.Topo)
		}
		if c.Header.Benchmark != "" && out.Header.Benchmark != "" && c.Header.Benchmark != out.Header.Benchmark {
			return nil, fmt.Errorf("campaign: benchmark mismatch: %q vs %q", c.Header.Benchmark, out.Header.Benchmark)
		}
		out.Records = append(out.Records, c.Records...)
	}
	return out, nil
}

// Recorder is a core.Runner middleware that appends every measurement to a
// campaign while delegating to the real runner — run a study and keep the
// raw data in one pass.
type Recorder struct {
	Campaign *Campaign
	Runner   core.Runner
}

// Measure implements core.Runner.
func (r Recorder) Measure(a assign.Assignment) (float64, error) {
	perf, err := r.Runner.Measure(a)
	if err != nil {
		return 0, err
	}
	r.Campaign.Add(a, perf)
	return perf, nil
}

// MeasureContext implements core.ContextRunner, so a Recorder can sit
// anywhere in a fault-tolerant measurement stack.
func (r Recorder) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	perf, err := core.AsContextRunner(r.Runner).MeasureContext(ctx, a)
	if err != nil {
		return 0, err
	}
	r.Campaign.Add(a, perf)
	return perf, nil
}

// Commit is the campaign as a core.CommitFunc: successful measurements
// are recorded, failures are not (the campaign file is the cleaned
// result; the journal keeps the failures). It is the parallel-campaign
// counterpart of the Recorder middleware.
func (c *Campaign) Commit(a assign.Assignment, perf float64, measureErr error) error {
	if measureErr == nil {
		c.Add(a, perf)
	}
	return nil
}

// ReadValues parses whitespace/line-separated float64s with '#' comments —
// the bare-numbers input format of cmd/evtfit, for measurements collected
// outside this library.
func ReadValues(r io.Reader, name string) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		for _, field := range strings.Fields(text) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %q is not a number", name, line, field)
			}
			out = append(out, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return out, nil
}
