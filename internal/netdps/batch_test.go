package netdps

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
)

// drawAssignments samples k random valid assignments for tb.
func drawAssignments(t *testing.T, tb *Testbed, rng *rand.Rand, k int) []assign.Assignment {
	t.Helper()
	as := make([]assign.Assignment, k)
	for i := range as {
		a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
		if err != nil {
			t.Fatal(err)
		}
		as[i] = a
	}
	return as
}

// TestMeasureBatchMatchesSerial: batched analytic measurement must be
// bit-identical, element by element, to the serial path — including the
// deterministic noise.
func TestMeasureBatchMatchesSerial(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 4)
	rng := rand.New(rand.NewSource(5))
	as := drawAssignments(t, tb, rng, 37)
	perfs, errs := tb.MeasureBatch(as)
	for i, a := range as {
		want, werr := tb.MeasureAnalytic(a)
		if errs[i] != nil || werr != nil {
			t.Fatalf("assignment %d: errs %v / %v", i, errs[i], werr)
		}
		if math.Float64bits(perfs[i]) != math.Float64bits(want) {
			t.Fatalf("assignment %d: batch %v != serial %v", i, perfs[i], want)
		}
	}
}

// TestMeasureBatchReportsPerAssignmentErrors: an invalid assignment fails
// alone, index-aligned, without failing its batchmates.
func TestMeasureBatchReportsPerAssignmentErrors(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 2)
	rng := rand.New(rand.NewSource(6))
	as := drawAssignments(t, tb, rng, 3)
	as[1] = assign.Assignment{Topo: tb.Machine.Topo, Ctx: []int{0}} // wrong task count
	perfs, errs := tb.MeasureBatch(as)
	if errs[1] == nil {
		t.Fatal("invalid assignment did not error")
	}
	for _, i := range []int{0, 2} {
		want, _ := tb.MeasureAnalytic(as[i])
		if errs[i] != nil || perfs[i] != want {
			t.Fatalf("assignment %d: %v, %v (want %v, nil)", i, perfs[i], errs[i], want)
		}
	}
}

// TestMeasureCycleBatchMatchesSerial: the batched cycle-simulator path
// must agree with per-assignment MeasureCycle exactly, Result for Result.
func TestMeasureCycleBatchMatchesSerial(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 3, WithNoise(0))
	rng := rand.New(rand.NewSource(7))
	as := drawAssignments(t, tb, rng, 9)
	as = append(as, assign.Assignment{Topo: tb.Machine.Topo, Ctx: []int{0}}) // one invalid
	const packets = 60
	results, errs := tb.MeasureCycleBatch(as, packets)
	for i, a := range as {
		want, werr := tb.MeasureCycle(a, packets)
		if (errs[i] == nil) != (werr == nil) {
			t.Fatalf("assignment %d: error mismatch: batch %v vs serial %v", i, errs[i], werr)
		}
		if werr != nil {
			continue
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("assignment %d: batch %+v != serial %+v", i, results[i], want)
		}
	}
	// The cached BatchSim must give a second batch the same answers.
	again, errs2 := tb.MeasureCycleBatch(as[:3], packets)
	for i := range again {
		if errs2[i] != nil || !reflect.DeepEqual(again[i], results[i]) {
			t.Fatalf("second batch diverged at %d", i)
		}
	}
}
