package netdps

import (
	"testing"

	"optassign/internal/apps"
	"optassign/internal/netgen"
)

// TestIdentityGolden pins the exact identity string of the default
// testbed. Identity() is the namespace of the persistent measurement
// store (core.CachedRunner keys and cas segments both embed it), so any
// change to the format silently orphans every disk-cached measurement —
// or, far worse, aliases measurements of two different testbeds. Change
// the expected literal here ONLY as a deliberate, documented format bump
// that cannot collide with the old namespace.
func TestIdentityGolden(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 8)
	const want = "netdps|IPFwd-L1|i8|s1|n0.004|pf4096,1.2,64-800,0.8,0.1"
	if got := tb.Identity(); got != want {
		t.Fatalf("Identity() = %q, golden %q\n"+
			"(changing this string invalidates every persisted measurement cache)", got, want)
	}
}

// TestIdentityDivergence: every knob that changes measured values must
// change the identity, so no two differently-configured testbeds can
// share cache entries.
func TestIdentityDivergence(t *testing.T) {
	base := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 8)
	hot := netgen.DefaultProfile()
	hot.TCPFraction = 0.5
	variants := map[string]*Testbed{
		"app":       newTB(t, apps.NewIPFwd(apps.IPFwdMem), 8),
		"instances": newTB(t, apps.NewIPFwd(apps.IPFwdL1), 7),
		"seed":      newTB(t, apps.NewIPFwd(apps.IPFwdL1), 8, WithSeed(2)),
		"noise":     newTB(t, apps.NewIPFwd(apps.IPFwdL1), 8, WithNoise(0.01)),
		"profile":   newTB(t, apps.NewIPFwd(apps.IPFwdL1), 8, WithProfile(hot)),
	}
	seen := map[string]string{base.Identity(): "base"}
	for name, tb := range variants {
		id := tb.Identity()
		if prev, dup := seen[id]; dup {
			t.Errorf("variant %q shares identity %q with %q", name, id, prev)
		}
		seen[id] = name
	}
}
