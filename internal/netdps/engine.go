package netdps

import (
	"fmt"
	"sync"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/netgen"
)

// QueueDepth is the capacity of the R→P and P→T memory queues, in packets.
const QueueDepth = 64

// Measurement is the outcome of one discrete-event run.
type Measurement struct {
	PPS         float64   // total packets per second across instances
	InstancePPS []float64 // per-instance throughput
	Packets     int       // packets processed per instance
	Pipelines   []apps.Pipeline
}

// MeasureEngine runs the assignment through the discrete-event engine:
// every pipeline instance receives `packets` packets from its own DMA
// channel of the traffic generator (the NIU splits traffic across
// channels, §5), each packet flows through the real R, P and T thread code,
// and stage timing follows the contention-adjusted service times with
// blocking on the bounded queues. Instances execute concurrently, so
// cross-instance shared state (the stateful benchmark's flow table) sees
// genuine concurrency.
func (tb *Testbed) MeasureEngine(a assign.Assignment, packets int) (Measurement, error) {
	if err := tb.checkAssignment(a); err != nil {
		return Measurement{}, err
	}
	if packets < 1 {
		return Measurement{}, fmt.Errorf("netdps: need at least one packet, got %d", packets)
	}
	res, err := tb.Machine.Solve(tb.tasks, tb.links, a.Ctx)
	if err != nil {
		return Measurement{}, err
	}
	meanBase := tb.App.MeanDemands()

	m := Measurement{
		InstancePPS: make([]float64, tb.Instances),
		Packets:     packets,
		Pipelines:   make([]apps.Pipeline, tb.Instances),
	}
	var wg sync.WaitGroup
	errs := make([]error, tb.Instances)
	for inst := 0; inst < tb.Instances; inst++ {
		m.Pipelines[inst] = tb.App.NewPipeline()
		wg.Add(1)
		go func(inst int) {
			defer wg.Done()
			gen, err := netgen.NewGenerator(tb.Profile, tb.Seed*1000+int64(inst))
			if err != nil {
				errs[inst] = err
				return
			}
			pipe := m.Pipelines[inst]
			threads := pipe.Threads()
			// Contention-adjusted mean service time per stage; per-packet
			// times scale with the packet's actual demand relative to the
			// advertised mean.
			var svc [apps.NumStages]float64
			for s := 0; s < int(apps.NumStages); s++ {
				svc[s] = res.ServiceCycles[inst*3+s]
			}

			// Blocking tandem-queue recurrence over rolling windows.
			fin := [apps.NumStages][]float64{}
			for s := range fin {
				fin[s] = make([]float64, packets+1) // fin[s][k+1] = finish of packet k
			}
			for k := 0; k < packets; k++ {
				pkt := gen.Next()
				var t [apps.NumStages]float64
				for s := 0; s < int(apps.NumStages); s++ {
					d := threads[s].Process(pkt)
					scale := d.Base() / meanBase[s].Base()
					t[s] = svc[s] * scale
				}
				// R starts when it finished the previous packet and the
				// R→P queue has room (P finished packet k-QueueDepth).
				start := fin[apps.Receive][k]
				if k >= QueueDepth {
					if g := fin[apps.Process][k-QueueDepth+1]; g > start {
						start = g
					}
				}
				fin[apps.Receive][k+1] = start + t[apps.Receive]

				start = fin[apps.Process][k]
				if fr := fin[apps.Receive][k+1]; fr > start {
					start = fr
				}
				if k >= QueueDepth {
					if g := fin[apps.Transmit][k-QueueDepth+1]; g > start {
						start = g
					}
				}
				fin[apps.Process][k+1] = start + t[apps.Process]

				start = fin[apps.Transmit][k]
				if fp := fin[apps.Process][k+1]; fp > start {
					start = fp
				}
				fin[apps.Transmit][k+1] = start + t[apps.Transmit]
			}
			totalCycles := fin[apps.Transmit][packets]
			seconds := totalCycles / tb.Machine.ClockHz
			m.InstancePPS[inst] = float64(packets) / seconds
		}(inst)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Measurement{}, err
		}
	}
	for _, pps := range m.InstancePPS {
		m.PPS += pps
	}
	return m, nil
}
