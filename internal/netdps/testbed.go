// Package netdps simulates the paper's measurement environment: a Netra DPS
// style lightweight runtime on an UltraSPARC-T2-class processor. Tasks are
// statically bound to hardware contexts, run to completion with no
// scheduler, interrupts or virtual memory, and communicate through bounded
// memory queues in R→P→T software pipelines (§4.2). A Testbed bundles a
// benchmark, an instance count and a traffic profile, and measures the
// throughput (packets per second) of any task assignment two ways:
//
//   - MeasureAnalytic: the steady-state fixed-point solver of internal/proc
//     plus deterministic measurement noise — fast enough for the tens of
//     thousands of measurements the statistical method consumes;
//   - MeasureEngine: a discrete-event simulation that pushes real packets
//     from the traffic generator through the actual benchmark thread code
//     over bounded queues — the ground truth the analytic path is validated
//     against.
package netdps

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/cycle"
	"optassign/internal/netgen"
	"optassign/internal/proc"
)

// Testbed is one benchmark configuration on the simulated machine.
type Testbed struct {
	Machine   *proc.Machine
	App       apps.App
	Instances int
	Profile   netgen.Profile
	Seed      int64
	// Noise is the relative half-width of the multiplicative measurement
	// noise applied by MeasureAnalytic: the measured value is the true one
	// scaled by a uniform factor in [1−Noise, 1+Noise]. The noise is
	// bounded — a 1.5-second measurement averages over ~3 million packets,
	// so jitter is tightly confined (the paper's "stable results", §4.4) —
	// which matters statistically: unbounded noise would erase the finite
	// right endpoint the EVT method estimates. It is also deterministic
	// per assignment class: measuring the same assignment twice returns
	// the same value.
	Noise float64

	tasks []proc.Task
	links []proc.Link

	// Lazily built, immutable batch simulator shared by every
	// MeasureCycleBatch call (see cyclepath.go).
	batchOnce sync.Once
	batchSim  *cycle.BatchSim
	batchErr  error
}

// Option customizes a Testbed.
type Option func(*Testbed)

// WithMachine replaces the default UltraSPARC T2 machine model.
func WithMachine(m *proc.Machine) Option { return func(tb *Testbed) { tb.Machine = m } }

// WithSeed sets the measurement-noise and traffic seed.
func WithSeed(seed int64) Option { return func(tb *Testbed) { tb.Seed = seed } }

// WithNoise sets the relative measurement-noise level (0 disables noise).
func WithNoise(noise float64) Option { return func(tb *Testbed) { tb.Noise = noise } }

// WithProfile replaces the default traffic profile.
func WithProfile(p netgen.Profile) Option { return func(tb *Testbed) { tb.Profile = p } }

// NewTestbed assembles a testbed running `instances` pipeline instances of
// app (3 threads each, so 3·instances tasks).
func NewTestbed(app apps.App, instances int, opts ...Option) (*Testbed, error) {
	tb := &Testbed{
		Machine:   proc.UltraSPARCT2Machine(),
		App:       app,
		Instances: instances,
		Profile:   netgen.DefaultProfile(),
		Seed:      1,
		Noise:     0.004,
	}
	for _, opt := range opts {
		opt(tb)
	}
	if instances < 1 {
		return nil, fmt.Errorf("netdps: need at least one instance, got %d", instances)
	}
	if err := tb.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := tb.Profile.Validate(); err != nil {
		return nil, err
	}
	if tb.TaskCount() > tb.Machine.Topo.Contexts() {
		return nil, fmt.Errorf("netdps: %d tasks exceed %d hardware contexts",
			tb.TaskCount(), tb.Machine.Topo.Contexts())
	}
	demands := app.MeanDemands()
	for i := 0; i < instances; i++ {
		for s := 0; s < int(apps.NumStages); s++ {
			tb.tasks = append(tb.tasks, proc.Task{Demand: demands[s], Group: i})
		}
		r, p, t := i*3, i*3+1, i*3+2
		tb.links = append(tb.links,
			proc.Link{A: r, B: p, Volume: apps.CommVolume},
			proc.Link{A: p, B: t, Volume: apps.CommVolume},
		)
	}
	return tb, nil
}

// TaskCount returns the number of schedulable tasks (3 per instance).
func (tb *Testbed) TaskCount() int { return tb.Instances * int(apps.NumStages) }

// Tasks returns the task and link structure presented to the processor
// model (shared slices; callers must not modify them).
func (tb *Testbed) Tasks() ([]proc.Task, []proc.Link) { return tb.tasks, tb.links }

// checkAssignment validates a to this testbed.
func (tb *Testbed) checkAssignment(a assign.Assignment) error {
	if a.Tasks() != tb.TaskCount() {
		return fmt.Errorf("netdps: assignment has %d tasks, testbed needs %d", a.Tasks(), tb.TaskCount())
	}
	if a.Topo != tb.Machine.Topo {
		return fmt.Errorf("netdps: assignment topology %v differs from machine %v", a.Topo, tb.Machine.Topo)
	}
	return a.Validate()
}

// Identity names everything that determines this testbed's measured
// values: the benchmark, instance count, noise seed and level, and the
// traffic profile. It is the identity string for core.NewCachedRunner, so
// a shared measurement cache can never serve one testbed's performance for
// another's. (The machine topology is appended to cache keys by the cache
// itself.)
func (tb *Testbed) Identity() string {
	return fmt.Sprintf("netdps|%s|i%d|s%d|n%g|pf%d,%g,%d-%d,%g,%g",
		tb.App.Name(), tb.Instances, tb.Seed, tb.Noise,
		tb.Profile.Flows, tb.Profile.ZipfS, tb.Profile.PayloadMin, tb.Profile.PayloadMax,
		tb.Profile.TCPFraction, tb.Profile.KeywordRate)
}

// MeasureAnalytic returns the measured PPS of the assignment using the
// steady-state solver, with deterministic per-assignment-class measurement
// noise. Symmetric assignments measure identically, as they would on real
// hardware.
func (tb *Testbed) MeasureAnalytic(a assign.Assignment) (float64, error) {
	if err := tb.checkAssignment(a); err != nil {
		return 0, err
	}
	res, err := tb.Machine.Solve(tb.tasks, tb.links, a.Ctx)
	if err != nil {
		return 0, err
	}
	pps := res.TotalPPS
	if tb.Noise > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", a.CanonicalKey(), tb.Seed)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		pps *= 1 + tb.Noise*(2*rng.Float64()-1)
	}
	return pps, nil
}

// Measure implements the core.Runner contract with MeasureAnalytic.
func (tb *Testbed) Measure(a assign.Assignment) (float64, error) { return tb.MeasureAnalytic(a) }

// MeasureBatch measures every assignment at once, sharded across
// GOMAXPROCS workers, and returns values and errors index-aligned with
// as. Each value is bit-identical to what MeasureAnalytic returns for the
// same assignment — the analytic solver is deterministic and the noise a
// pure function of (canonical class, seed) — so the batched and serial
// measurement paths are interchangeable wherever order is preserved. It
// satisfies the core batch-measurement contract structurally.
func (tb *Testbed) MeasureBatch(as []assign.Assignment) ([]float64, []error) {
	perfs := make([]float64, len(as))
	errs := make([]error, len(as))
	if len(as) == 0 {
		return perfs, errs
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(as) {
		workers = len(as)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(as); i += workers {
				perfs[i], errs[i] = tb.MeasureAnalytic(as[i])
			}
		}(w)
	}
	wg.Wait()
	return perfs, errs
}
