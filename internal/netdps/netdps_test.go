package netdps

import (
	"math"
	"math/rand"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/netgen"
	"optassign/internal/t2"
)

func newTB(t *testing.T, app apps.App, instances int, opts ...Option) *Testbed {
	t.Helper()
	tb, err := NewTestbed(app, instances, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func randomAssignment(t *testing.T, tb *Testbed, seed int64) assign.Assignment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewTestbedValidation(t *testing.T) {
	app := apps.NewIPFwd(apps.IPFwdL1)
	if _, err := NewTestbed(app, 0); err == nil {
		t.Error("0 instances accepted")
	}
	if _, err := NewTestbed(app, 22); err == nil { // 66 tasks > 64 contexts
		t.Error("overfull testbed accepted")
	}
	bad := netgen.Profile{Flows: 0}
	if _, err := NewTestbed(app, 1, WithProfile(bad)); err == nil {
		t.Error("bad profile accepted")
	}
	tb := newTB(t, app, 8)
	if tb.TaskCount() != 24 {
		t.Errorf("TaskCount = %d", tb.TaskCount())
	}
	tasks, links := tb.Tasks()
	if len(tasks) != 24 || len(links) != 16 {
		t.Errorf("tasks=%d links=%d", len(tasks), len(links))
	}
}

func TestMeasureAnalyticValidatesAssignment(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 2)
	if _, err := tb.MeasureAnalytic(assign.Assignment{Topo: tb.Machine.Topo, Ctx: []int{0, 1, 2}}); err == nil {
		t.Error("wrong task count accepted")
	}
	if _, err := tb.MeasureAnalytic(assign.Assignment{Topo: t2.Topology{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 8}, Ctx: []int{0, 1, 2, 3, 4, 5}}); err == nil {
		t.Error("wrong topology accepted")
	}
	if _, err := tb.MeasureAnalytic(assign.Assignment{Topo: tb.Machine.Topo, Ctx: []int{0, 0, 1, 2, 3, 4}}); err == nil {
		t.Error("colliding assignment accepted")
	}
}

func TestMeasureAnalyticDeterministicAndSymmetric(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 4)
	a := randomAssignment(t, tb, 7)
	p1, err := tb.MeasureAnalytic(a)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tb.MeasureAnalytic(a)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("repeated measurement differs: %v vs %v", p1, p2)
	}
	// A symmetric relabeling (swap cores 0 and 1) measures identically.
	topo := tb.Machine.Topo
	b := a.Clone()
	for i, ctx := range a.Ctx {
		switch topo.CoreOf(ctx) {
		case 0:
			b.Ctx[i] = ctx + topo.PipesPerCore*topo.ContextsPerPipe
		case 1:
			b.Ctx[i] = ctx - topo.PipesPerCore*topo.ContextsPerPipe
		}
	}
	p3, err := tb.MeasureAnalytic(b)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p3 {
		t.Errorf("symmetric assignment measured differently: %v vs %v", p1, p3)
	}
}

func TestNoiseIsSmallAndConfigurable(t *testing.T) {
	app := apps.NewIPFwd(apps.IPFwdL1)
	clean := newTB(t, app, 4, WithNoise(0))
	noisy := newTB(t, app, 4, WithNoise(0.002))
	a := randomAssignment(t, clean, 11)
	pc, err := clean.MeasureAnalytic(a)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := noisy.MeasureAnalytic(a)
	if err != nil {
		t.Fatal(err)
	}
	if pc == pn {
		t.Error("noise had no effect")
	}
	if math.Abs(pn-pc)/pc > 0.02 {
		t.Errorf("noise too large: %v vs %v", pn, pc)
	}
	// Different seeds shift the noise.
	noisy2 := newTB(t, app, 4, WithNoise(0.002), WithSeed(99))
	pn2, err := noisy2.MeasureAnalytic(a)
	if err != nil {
		t.Fatal(err)
	}
	if pn2 == pn {
		t.Error("seed had no effect on noise")
	}
}

func TestAssignmentMattersAndMagnitudeIsSane(t *testing.T) {
	// The paper reports up to 49% performance variation between
	// assignments of the same workload (§4.3) and per-figure PPS in the
	// 10^5–10^7 range. Check both the spread and the magnitude.
	for _, app := range append(apps.Suite(netgen.DefaultProfile()), apps.Figure1Apps()...) {
		tb := newTB(t, app, 8, WithNoise(0))
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := int64(0); s < 60; s++ {
			pps, err := tb.MeasureAnalytic(randomAssignment(t, tb, s))
			if err != nil {
				t.Fatal(err)
			}
			lo = math.Min(lo, pps)
			hi = math.Max(hi, pps)
		}
		spread := (hi - lo) / hi
		if spread < 0.03 {
			t.Errorf("%s: spread %.1f%% too small — assignment barely matters", app.Name(), spread*100)
		}
		if spread > 0.70 {
			t.Errorf("%s: spread %.1f%% implausibly large", app.Name(), spread*100)
		}
		if lo < 2e5 || hi > 5e7 {
			t.Errorf("%s: PPS range [%.3g, %.3g] outside sanity band", app.Name(), lo, hi)
		}
	}
}

func TestClusteredBeatsScattered(t *testing.T) {
	// Placing each pipeline inside one core (P alone in a pipe, R+T in the
	// other) should beat scattering the three threads across three cores:
	// communication stays in the L1 domain.
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 2, WithNoise(0))
	topo := tb.Machine.Topo
	clustered := assign.Assignment{Topo: topo, Ctx: []int{
		topo.Context(0, 0, 0), topo.Context(0, 1, 0), topo.Context(0, 0, 1), // instance 0 in core 0
		topo.Context(1, 0, 0), topo.Context(1, 1, 0), topo.Context(1, 0, 1), // instance 1 in core 1
	}}
	scattered := assign.Assignment{Topo: topo, Ctx: []int{
		topo.Context(0, 0, 0), topo.Context(1, 0, 0), topo.Context(2, 0, 0),
		topo.Context(3, 0, 0), topo.Context(4, 0, 0), topo.Context(5, 0, 0),
	}}
	pc, err := tb.MeasureAnalytic(clustered)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := tb.MeasureAnalytic(scattered)
	if err != nil {
		t.Fatal(err)
	}
	if !(pc > ps) {
		t.Errorf("clustered %v should beat scattered %v", pc, ps)
	}
}

func TestEngineMatchesAnalytic(t *testing.T) {
	// Cross-validation of the two measurement paths (DESIGN.md §6).
	for _, app := range []apps.App{
		apps.NewIPFwd(apps.IPFwdL1),
		apps.NewAhoCorasick(netgen.DefaultProfile()),
		apps.NewStateful(),
	} {
		tb := newTB(t, app, 4, WithNoise(0))
		for _, seed := range []int64{3, 17} {
			a := randomAssignment(t, tb, seed)
			analytic, err := tb.MeasureAnalytic(a)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := tb.MeasureEngine(a, 2500)
			if err != nil {
				t.Fatal(err)
			}
			diff := math.Abs(meas.PPS-analytic) / analytic
			if diff > 0.08 {
				t.Errorf("%s seed %d: engine %.0f vs analytic %.0f (%.1f%% apart)",
					app.Name(), seed, meas.PPS, analytic, diff*100)
			}
		}
	}
}

func TestEngineRunsRealThreadCode(t *testing.T) {
	profile := netgen.DefaultProfile()
	app := apps.NewStateful()
	tb := newTB(t, app, 4, WithProfile(profile))
	a := randomAssignment(t, tb, 5)
	meas, err := tb.MeasureEngine(a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Pipelines) != 4 || meas.Packets != 1000 {
		t.Fatalf("measurement metadata: %+v", meas)
	}
	// All four concurrent instances really pushed packets through the
	// shared flow table.
	if app.Table().Flows() == 0 {
		t.Error("no flows tracked — engine did not run the real P threads")
	}
	for i, pps := range meas.InstancePPS {
		if pps <= 0 {
			t.Errorf("instance %d: PPS %v", i, pps)
		}
	}
	var rx uint64
	for _, pipe := range meas.Pipelines {
		rx += pipe.R.(*apps.ReceiveThread).Packets
	}
	if rx != 4000 {
		t.Errorf("receive threads saw %d packets, want 4000", rx)
	}
}

func TestEngineValidation(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 2)
	a := randomAssignment(t, tb, 1)
	if _, err := tb.MeasureEngine(a, 0); err == nil {
		t.Error("0 packets accepted")
	}
	bad := a.Clone()
	bad.Ctx[0] = bad.Ctx[1]
	if _, err := tb.MeasureEngine(bad, 100); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestEngineBottleneckOrdering(t *testing.T) {
	// A good assignment must also be measured as faster by the engine, not
	// just the analytic path.
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdIntAdd), 2, WithNoise(0))
	topo := tb.Machine.Topo
	// Worst case: both IEU-hungry P threads in the same pipe along with
	// their R threads.
	bad := assign.Assignment{Topo: topo, Ctx: []int{
		topo.Context(0, 0, 0), topo.Context(0, 0, 1), topo.Context(0, 1, 0),
		topo.Context(0, 0, 2), topo.Context(0, 0, 3), topo.Context(0, 1, 1),
	}}
	good := assign.Assignment{Topo: topo, Ctx: []int{
		topo.Context(0, 0, 0), topo.Context(0, 1, 0), topo.Context(0, 0, 1),
		topo.Context(1, 0, 0), topo.Context(1, 1, 0), topo.Context(1, 0, 1),
	}}
	mb, err := tb.MeasureEngine(bad, 1500)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := tb.MeasureEngine(good, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if !(mg.PPS > mb.PPS*1.05) {
		t.Errorf("engine: good %v not clearly above bad %v", mg.PPS, mb.PPS)
	}
}
