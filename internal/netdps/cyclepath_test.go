package netdps

import (
	"math"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/proc"
	"optassign/internal/sched"
)

func TestMeasureCycleAgreesWithAnalytic(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 4, WithNoise(0))
	a, err := sched.LinuxLike{}.Assign(tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := tb.MeasureAnalytic(a)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := tb.MeasureCycle(a, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Different fidelity levels: agreement within 25% and same order of
	// magnitude is the contract (orderings are tested in internal/cycle).
	ratio := cyc.TotalPPS / analytic
	if math.IsNaN(ratio) || ratio < 0.75 || ratio > 1.25 {
		t.Errorf("cycle %v vs analytic %v (ratio %.2f)", cyc.TotalPPS, analytic, ratio)
	}
	if cyc.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
	// Invalid assignment rejected.
	bad := a.Clone()
	bad.Ctx[0] = bad.Ctx[1]
	if _, err := tb.MeasureCycle(bad, 100); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestCycleAndAnalyticAgreeOnOrdering(t *testing.T) {
	// Ground-truth check for the analytic model: on a 2-instance IPFwd-L1
	// workload, both models must rank a good placement above a bad one,
	// and their absolute PPS must be within 2× of each other.
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdL1), 2, WithNoise(0))
	topo := tb.Machine.Topo
	good := []int{
		topo.Context(0, 1, 0), topo.Context(0, 0, 0), topo.Context(0, 1, 1),
		topo.Context(1, 1, 0), topo.Context(1, 0, 0), topo.Context(1, 1, 1),
	}
	bad := []int{
		topo.Context(0, 0, 0), topo.Context(0, 0, 1), topo.Context(0, 0, 2),
		topo.Context(0, 1, 0), topo.Context(0, 0, 3), topo.Context(0, 1, 1),
	}
	measure := func(ctx []int) (cyc, analytic float64) {
		a := assign.Assignment{Topo: tb.Machine.Topo, Ctx: ctx}
		res, err := tb.MeasureCycle(a, 300)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tb.MeasureAnalytic(a)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalPPS, p
	}
	cg, ag := measure(good)
	cb, ab := measure(bad)
	if !(cg > cb) {
		t.Errorf("cycle sim ordering wrong: good %v vs bad %v", cg, cb)
	}
	if !(ag > ab) {
		t.Errorf("analytic ordering wrong: good %v vs bad %v", ag, ab)
	}
	for _, pair := range [][2]float64{{cg, ag}, {cb, ab}} {
		ratio := pair[0] / pair[1]
		if math.IsNaN(ratio) || ratio < 0.5 || ratio > 2 {
			t.Errorf("models disagree beyond 2×: cycle %v vs analytic %v", pair[0], pair[1])
		}
	}
}

func TestProfileAssignment(t *testing.T) {
	tb := newTB(t, apps.NewIPFwd(apps.IPFwdMem), 8, WithNoise(0))
	a, err := sched.LinuxLike{}.Assign(tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := tb.ProfileAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Uses) == 0 {
		t.Fatal("empty profile")
	}
	// IPFwd-Mem presses memory: the chip-wide MEM controller must appear
	// with nonzero utilization.
	var mem bool
	for _, u := range prof.Uses {
		if u.Resource == proc.MEM && u.Util > 0 {
			mem = true
		}
	}
	if !mem {
		t.Error("no MEM utilization for the memory-bound benchmark")
	}
	bad := a.Clone()
	bad.Ctx[0] = 999
	if _, err := tb.ProfileAssignment(bad); err == nil {
		t.Error("invalid assignment accepted")
	}
}
