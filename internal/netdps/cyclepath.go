package netdps

import (
	"optassign/internal/assign"
	"optassign/internal/cycle"
	"optassign/internal/proc"
)

// MeasureCycle measures the assignment on the cycle-approximate
// fine-grained-multithreading simulator (internal/cycle): issue slots,
// LSU-port arbitration and latency hiding are simulated per cycle instead
// of being charged through utilization curves. It is the slowest and
// lowest-level of the three measurement paths; use it to sanity-check the
// other two, not for mass campaigns.
func (tb *Testbed) MeasureCycle(a assign.Assignment, packets int) (cycle.Result, error) {
	if err := tb.checkAssignment(a); err != nil {
		return cycle.Result{}, err
	}
	sim, err := cycle.New(tb.Machine, tb.tasks, tb.links, a.Ctx, cycle.Config{QueueDepth: QueueDepth})
	if err != nil {
		return cycle.Result{}, err
	}
	return sim.Run(packets)
}

// MeasureCycleBatch measures every assignment on the cycle-approximate
// simulator in one core-sharded pass (cycle.BatchSim): the per-task
// packet programs are built once per testbed and shared by every
// assignment and every worker, and strand plus rollup storage is arena
// allocated per batch. Results and errors are index-aligned with as and
// bit-identical to calling MeasureCycle per assignment.
func (tb *Testbed) MeasureCycleBatch(as []assign.Assignment, packets int) ([]cycle.Result, []error) {
	results := make([]cycle.Result, len(as))
	errs := make([]error, len(as))
	if len(as) == 0 {
		return results, errs
	}
	tb.batchOnce.Do(func() {
		tb.batchSim, tb.batchErr = cycle.NewBatchSim(tb.Machine, tb.tasks, tb.links, cycle.Config{QueueDepth: QueueDepth})
	})
	if tb.batchErr != nil {
		for i := range errs {
			errs[i] = tb.batchErr
		}
		return results, errs
	}
	placements := make([][]int, 0, len(as))
	live := make([]int, 0, len(as)) // indices whose assignment validated
	for i, a := range as {
		if err := tb.checkAssignment(a); err != nil {
			errs[i] = err
			continue
		}
		placements = append(placements, a.Ctx)
		live = append(live, i)
	}
	batchResults, batchErrs := tb.batchSim.Run(placements, packets)
	for j, i := range live {
		results[i], errs[i] = batchResults[j], batchErrs[j]
	}
	return results, errs
}

// ProfileAssignment exposes the hardware-counter view of an assignment at
// the analytic operating point (proc.SolveProfile) — what an engineer
// would pull from cpustat after a measurement run.
func (tb *Testbed) ProfileAssignment(a assign.Assignment) (*proc.Profile, error) {
	if err := tb.checkAssignment(a); err != nil {
		return nil, err
	}
	return tb.Machine.SolveProfile(tb.tasks, tb.links, a.Ctx)
}
