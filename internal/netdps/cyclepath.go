package netdps

import (
	"optassign/internal/assign"
	"optassign/internal/cycle"
	"optassign/internal/proc"
)

// MeasureCycle measures the assignment on the cycle-approximate
// fine-grained-multithreading simulator (internal/cycle): issue slots,
// LSU-port arbitration and latency hiding are simulated per cycle instead
// of being charged through utilization curves. It is the slowest and
// lowest-level of the three measurement paths; use it to sanity-check the
// other two, not for mass campaigns.
func (tb *Testbed) MeasureCycle(a assign.Assignment, packets int) (cycle.Result, error) {
	if err := tb.checkAssignment(a); err != nil {
		return cycle.Result{}, err
	}
	sim, err := cycle.New(tb.Machine, tb.tasks, tb.links, a.Ctx, cycle.Config{QueueDepth: QueueDepth})
	if err != nil {
		return cycle.Result{}, err
	}
	return sim.Run(packets)
}

// ProfileAssignment exposes the hardware-counter view of an assignment at
// the analytic operating point (proc.SolveProfile) — what an engineer
// would pull from cpustat after a measurement run.
func (tb *Testbed) ProfileAssignment(a assign.Assignment) (*proc.Profile, error) {
	if err := tb.checkAssignment(a); err != nil {
		return nil, err
	}
	return tb.Machine.SolveProfile(tb.tasks, tb.links, a.Ctx)
}
