package netdps

import (
	"math/rand"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/netgen"
)

// TestEveryBenchmarkProcessesRealTraffic is the suite-wide functional
// integration test: every benchmark's pipelines run real generated packets
// through the discrete-event engine, and the per-app functional counters
// confirm the actual algorithms executed (forwarding decisions, log lines,
// automaton matches, flow records).
func TestEveryBenchmarkProcessesRealTraffic(t *testing.T) {
	profile := netgen.DefaultProfile()
	const packets = 600
	for _, app := range append(apps.Suite(profile), apps.Figure1Apps()...) {
		tb, err := NewTestbed(app, 4, WithProfile(profile))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
		if err != nil {
			t.Fatal(err)
		}
		meas, err := tb.MeasureEngine(a, packets)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if meas.PPS <= 0 {
			t.Fatalf("%s: no throughput", app.Name())
		}
		var rx, tx uint64
		for _, pipe := range meas.Pipelines {
			r := pipe.R.(*apps.ReceiveThread)
			tr := pipe.T.(*apps.TransmitThread)
			rx += r.Packets
			tx += tr.Packets
			if r.BadEth != 0 {
				t.Errorf("%s: receive saw %d malformed frames", app.Name(), r.BadEth)
			}
			if tr.BadSum != 0 {
				t.Errorf("%s: transmit saw %d bad checksums", app.Name(), tr.BadSum)
			}
		}
		if rx != 4*packets || tx != 4*packets {
			t.Errorf("%s: rx=%d tx=%d, want %d each", app.Name(), rx, tx, 4*packets)
		}
	}
}

// TestAhoEngineFindsKeywords pins the functional behaviour of the matcher
// under the engine: with keyword injection on, hits must appear.
func TestAhoEngineFindsKeywords(t *testing.T) {
	profile := netgen.DefaultProfile()
	profile.KeywordRate = 0.5
	app := apps.NewAhoCorasick(profile)
	tb, err := NewTestbed(app, 2, WithProfile(profile))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	meas, err := tb.MeasureEngine(a, 400)
	if err != nil {
		t.Fatal(err)
	}
	var hits, matches uint64
	for _, pipe := range meas.Pipelines {
		p, ok := pipe.P.(interface {
			MatchStats() (uint64, uint64, uint64)
		})
		if !ok {
			t.Fatal("aho P thread does not expose MatchStats")
		}
		pkts, h, m := p.MatchStats()
		if pkts != 400 {
			t.Errorf("P thread scanned %d packets, want 400", pkts)
		}
		hits += h
		matches += m
	}
	// Half the packets carry a planted keyword: with 800 packets total the
	// engine must have produced a substantial number of real matches.
	if hits < 300 || matches < hits {
		t.Errorf("hits=%d matches=%d across 800 packets at rate 0.5", hits, matches)
	}
	if app.Automaton().Search([]byte("synflood"), nil) == 0 {
		t.Error("automaton lost its keywords")
	}
}
