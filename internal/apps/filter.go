package apps

import (
	"fmt"
	"strconv"
	"strings"

	"optassign/internal/netgen"
)

// CompileFilter builds a packet predicate from a tcpdump-flavoured
// expression, the "filters based on many criteria" the paper's packet
// analyzer supports. Examples:
//
//	proto == tcp && dstport < 1024
//	srcip == 10.1.2.3 || ttl <= 5
//	!(dstport == 80) && len >= 512
//
// Fields: proto, ttl, srcport, dstport, srcip, dstip, len.
// Operators: == != < <= > >=, combined with && || ! and parentheses.
// Values: integers, dotted IPv4 addresses, or the protocol names tcp/udp.
func CompileFilter(expr string) (func(netgen.Header) bool, error) {
	toks, err := lexFilter(expr)
	if err != nil {
		return nil, err
	}
	p := &filterParser{toks: toks}
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("apps: filter: unexpected %q", p.peek())
	}
	return node, nil
}

// --- lexer ---------------------------------------------------------------

func lexFilter(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '&' || c == '|':
			if i+1 >= len(s) || s[i+1] != c {
				return nil, fmt.Errorf("apps: filter: lone %q", string(c))
			}
			toks = append(toks, s[i:i+2])
			i += 2
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, "!=")
				i += 2
			} else {
				toks = append(toks, "!")
				i++
			}
		case c == '=' || c == '<' || c == '>':
			if c == '=' && (i+1 >= len(s) || s[i+1] != '=') {
				return nil, fmt.Errorf("apps: filter: use == for equality")
			}
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, s[i:i+2])
				i += 2
			} else {
				toks = append(toks, string(c))
				i++
			}
		default:
			j := i
			for j < len(s) && (isAlnum(s[j]) || s[j] == '.') {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("apps: filter: unexpected character %q", string(c))
			}
			toks = append(toks, strings.ToLower(s[i:j]))
			i = j
		}
	}
	return toks, nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// --- parser --------------------------------------------------------------

type filterNode func(netgen.Header) bool

type filterParser struct {
	toks []string
	pos  int
}

func (p *filterParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *filterParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *filterParser) done() bool { return p.pos >= len(p.toks) }

func (p *filterParser) parseOr() (filterNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "||" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(h netgen.Header) bool { return l(h) || right(h) }
	}
	return left, nil
}

func (p *filterParser) parseAnd() (filterNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&&" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(h netgen.Header) bool { return l(h) && right(h) }
	}
	return left, nil
}

func (p *filterParser) parseUnary() (filterNode, error) {
	switch p.peek() {
	case "!":
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(h netgen.Header) bool { return !inner(h) }, nil
	case "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("apps: filter: missing )")
		}
		return inner, nil
	case "":
		return nil, fmt.Errorf("apps: filter: unexpected end of expression")
	default:
		return p.parseComparison()
	}
}

var filterFields = map[string]func(netgen.Header) uint64{
	"proto":   func(h netgen.Header) uint64 { return uint64(h.Proto) },
	"ttl":     func(h netgen.Header) uint64 { return uint64(h.TTL) },
	"srcport": func(h netgen.Header) uint64 { return uint64(h.SrcPort) },
	"dstport": func(h netgen.Header) uint64 { return uint64(h.DstPort) },
	"srcip":   func(h netgen.Header) uint64 { return uint64(h.SrcIP) },
	"dstip":   func(h netgen.Header) uint64 { return uint64(h.DstIP) },
	"len":     func(h netgen.Header) uint64 { return uint64(h.Length) },
}

func (p *filterParser) parseComparison() (filterNode, error) {
	field := p.next()
	get, ok := filterFields[field]
	if !ok {
		return nil, fmt.Errorf("apps: filter: unknown field %q", field)
	}
	op := p.next()
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("apps: filter: bad operator %q after %q", op, field)
	}
	raw := p.next()
	if raw == "" {
		return nil, fmt.Errorf("apps: filter: missing value after %q %s", field, op)
	}
	val, err := parseFilterValue(field, raw)
	if err != nil {
		return nil, err
	}
	switch op {
	case "==":
		return func(h netgen.Header) bool { return get(h) == val }, nil
	case "!=":
		return func(h netgen.Header) bool { return get(h) != val }, nil
	case "<":
		return func(h netgen.Header) bool { return get(h) < val }, nil
	case "<=":
		return func(h netgen.Header) bool { return get(h) <= val }, nil
	case ">":
		return func(h netgen.Header) bool { return get(h) > val }, nil
	default:
		return func(h netgen.Header) bool { return get(h) >= val }, nil
	}
}

func parseFilterValue(field, raw string) (uint64, error) {
	switch raw {
	case "tcp":
		return netgen.ProtoTCP, nil
	case "udp":
		return netgen.ProtoUDP, nil
	}
	if strings.Contains(raw, ".") {
		parts := strings.Split(raw, ".")
		if len(parts) != 4 {
			return 0, fmt.Errorf("apps: filter: bad IPv4 address %q", raw)
		}
		var ip uint64
		for _, part := range parts {
			octet, err := strconv.ParseUint(part, 10, 8)
			if err != nil {
				return 0, fmt.Errorf("apps: filter: bad IPv4 address %q", raw)
			}
			ip = ip<<8 | octet
		}
		return ip, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("apps: filter: bad value %q for %q", raw, field)
	}
	return v, nil
}
