package apps

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// naiveCount counts keyword occurrences by brute force.
func naiveCount(text string, keywords []string) int {
	n := 0
	for _, kw := range keywords {
		if kw == "" {
			continue
		}
		for i := 0; i+len(kw) <= len(text); i++ {
			if text[i:i+len(kw)] == kw {
				n++
			}
		}
	}
	return n
}

func TestAutomatonClassicExample(t *testing.T) {
	// The worked example from the Aho-Corasick paper: in "ushers", "she"
	// and "he" both end at position 4, "hers" at position 6.
	a := NewAutomaton([]string{"he", "she", "his", "hers"})
	ms := a.FindAll([]byte("ushers"))
	want := []Match{{Keyword: 0, End: 4}, {Keyword: 1, End: 4}, {Keyword: 3, End: 6}}
	if len(ms) != len(want) {
		t.Fatalf("matches = %+v, want %+v", ms, want)
	}
	for i := range ms {
		if ms[i] != want[i] {
			t.Errorf("match %d = %+v, want %+v", i, ms[i], want[i])
		}
	}
}

func TestAutomatonOverlappingAndNested(t *testing.T) {
	a := NewAutomaton([]string{"aa", "aaa"})
	// "aaaa": "aa" at ends 2,3,4 and "aaa" at ends 3,4 -> 5 matches.
	if got := a.Search([]byte("aaaa"), nil); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestAutomatonSubstringKeyword(t *testing.T) {
	// A keyword inside another must still be reported (output links).
	a := NewAutomaton([]string{"abcde", "bcd"})
	ms := a.FindAll([]byte("xabcdex"))
	if len(ms) != 2 {
		t.Fatalf("matches = %+v", ms)
	}
	if ms[0].Keyword != 1 || ms[0].End != 5 || ms[1].Keyword != 0 || ms[1].End != 6 {
		t.Errorf("matches = %+v", ms)
	}
}

func TestAutomatonNoMatches(t *testing.T) {
	a := NewAutomaton([]string{"needle"})
	if got := a.Search([]byte("plain haystack text"), nil); got != 0 {
		t.Errorf("count = %d", got)
	}
	if got := a.Search(nil, nil); got != 0 {
		t.Errorf("empty text count = %d", got)
	}
}

func TestAutomatonEmptyKeywordIgnored(t *testing.T) {
	a := NewAutomaton([]string{"", "ab"})
	if got := a.Search([]byte("abab"), nil); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestAutomatonStatesAndKeywords(t *testing.T) {
	kws := []string{"he", "she"}
	a := NewAutomaton(kws)
	// Trie: root + h,e + s,sh,she: but "he" shares nothing with "she"'s
	// path start; states = 1 + 2 + 3 = 6.
	if a.States() != 6 {
		t.Errorf("states = %d, want 6", a.States())
	}
	if len(a.Keywords()) != 2 {
		t.Error("Keywords lost")
	}
}

func TestAutomatonMatchesNaiveSearchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := "abc" // small alphabet provokes overlaps
		nk := 1 + rng.Intn(5)
		kws := make([]string, nk)
		for i := range kws {
			l := 1 + rng.Intn(4)
			var b strings.Builder
			for j := 0; j < l; j++ {
				b.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			kws[i] = b.String()
		}
		var text strings.Builder
		for j := 0; j < 200; j++ {
			text.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		a := NewAutomaton(kws)
		// Duplicate keywords double-report in the naive count; dedup first.
		seen := map[string]bool{}
		var uniq []string
		for _, kw := range kws {
			if !seen[kw] {
				seen[kw] = true
				uniq = append(uniq, kw)
			}
		}
		aUniq := NewAutomaton(uniq)
		_ = a
		return aUniq.Search([]byte(text.String()), nil) == naiveCount(text.String(), uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAutomatonVisitPositionsAreCorrect(t *testing.T) {
	a := NewAutomaton(DoSKeywordsForTest())
	text := []byte("xxsynfloodyy and then a smurf attack")
	a.Search(text, func(m Match) {
		kw := a.Keywords()[m.Keyword]
		start := m.End - len(kw)
		if start < 0 || string(text[start:m.End]) != kw {
			t.Errorf("reported match %q at end %d does not align", kw, m.End)
		}
	})
	if got := a.Search(text, nil); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

// DoSKeywordsForTest mirrors the generator's keyword set without importing
// netgen in this test file's hot loop.
func DoSKeywordsForTest() []string {
	return []string{"synflood", "smurf", "teardrop", "pingofdeath"}
}

func BenchmarkAutomatonSearch(b *testing.B) {
	a := NewAutomaton(DoSKeywordsForTest())
	rng := rand.New(rand.NewSource(1))
	text := make([]byte, 1500)
	for i := range text {
		text[i] = byte('a' + rng.Intn(26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Search(text, nil)
	}
	b.SetBytes(int64(len(text)))
}
