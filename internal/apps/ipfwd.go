package apps

import (
	"encoding/binary"
	"sync"

	"optassign/internal/netgen"
	"optassign/internal/proc"
)

// IPFwd variant selectors (§4.3 and the Figure-1 motivation study).
type IPFwdVariant int

// The four IPFwd variants used in the paper.
const (
	// IPFwdL1 keeps the lookup table small enough to live in the L1 data
	// cache — the best-case memory behaviour.
	IPFwdL1 IPFwdVariant = iota
	// IPFwdMem uses a lookup table far larger than the caches, so lookups
	// continuously access main memory — the worst-case behaviour.
	IPFwdMem
	// IPFwdIntAdd replaces part of the lookup work with integer-add
	// processing (Figure 1's IPFwd-intadd): heavily IEU-bound, so sharing a
	// hardware pipeline hurts a lot.
	IPFwdIntAdd
	// IPFwdIntMul is the integer-multiply sibling (Figure 1's
	// IPFwd-intmul): the long-latency multiplier is private per strand, so
	// most of its time does not contend.
	IPFwdIntMul
)

func (v IPFwdVariant) String() string {
	switch v {
	case IPFwdL1:
		return "IPFwd-L1"
	case IPFwdMem:
		return "IPFwd-Mem"
	case IPFwdIntAdd:
		return "IPFwd-intadd"
	case IPFwdIntMul:
		return "IPFwd-intmul"
	default:
		return "IPFwd(?)"
	}
}

// Route-table sizes: a few hundred routes keep the trie cache-resident
// (IPFwd-L1); a backbone-scale table walks main memory on every lookup
// (IPFwd-Mem). The arithmetic variants use the small table — their P
// threads spend their time computing, not looking up.
const (
	ipfwdL1Routes  = 512
	ipfwdMemRoutes = 1 << 18
)

// IPFwdApp is the IP-forwarding benchmark family.
type IPFwdApp struct {
	variant IPFwdVariant
	table   *RouteTable // longest-prefix-match table, read-only when running
}

// The route tables are immutable after population and identical for every
// app instance of a variant, so they are built once per process.
var (
	ipfwdSmallTable *RouteTable
	ipfwdLargeTable *RouteTable
	ipfwdSmallOnce  sync.Once
	ipfwdLargeOnce  sync.Once
)

func ipfwdTable(variant IPFwdVariant) *RouteTable {
	build := func(routes int, seed int64) *RouteTable {
		t := NewRouteTable()
		if err := t.PopulateRandom(routes, seed); err != nil {
			// PopulateRandom only fails on programming errors (reserved
			// next hops); surface loudly rather than forwarding nothing.
			panic(err)
		}
		return t
	}
	if variant == IPFwdMem {
		ipfwdLargeOnce.Do(func() { ipfwdLargeTable = build(ipfwdMemRoutes, 2012) })
		return ipfwdLargeTable
	}
	ipfwdSmallOnce.Do(func() { ipfwdSmallTable = build(ipfwdL1Routes, 2012) })
	return ipfwdSmallTable
}

// NewIPFwd builds the chosen IPFwd variant. The route table is populated
// deterministically so forwarding decisions are reproducible.
func NewIPFwd(variant IPFwdVariant) *IPFwdApp {
	return &IPFwdApp{variant: variant, table: ipfwdTable(variant)}
}

// Name implements App.
func (a *IPFwdApp) Name() string { return a.variant.String() }

// NewPipeline implements App.
func (a *IPFwdApp) NewPipeline() Pipeline {
	return Pipeline{
		R: &ReceiveThread{},
		P: &ipfwdProcess{app: a},
		T: &TransmitThread{},
	}
}

// MeanDemands implements App.
func (a *IPFwdApp) MeanDemands() [NumStages]proc.Demand {
	return [NumStages]proc.Demand{receiveDemand(), a.processDemand(), transmitDemand()}
}

// processDemand is the calibrated per-packet footprint of the P stage.
func (a *IPFwdApp) processDemand() proc.Demand {
	var d proc.Demand
	switch a.variant {
	case IPFwdL1:
		d.Serial = 20
		d.Res[proc.IFU] = 30
		d.Res[proc.IEU] = 650
		d.Res[proc.LSU] = 360
		d.Res[proc.L1D] = 200
		d.Res[proc.TLB] = 10
		d.Res[proc.L2] = 20
		d.Res[proc.XBAR] = 10
	case IPFwdMem:
		d.Serial = 10
		d.Res[proc.IFU] = 10
		d.Res[proc.IEU] = 800
		d.Res[proc.LSU] = 450
		d.Res[proc.L1D] = 60
		d.Res[proc.TLB] = 10
		d.Res[proc.L2] = 60
		d.Res[proc.MEM] = 200
		d.Res[proc.XBAR] = 10
	case IPFwdIntAdd:
		d.Serial = 50
		d.Res[proc.IFU] = 80
		d.Res[proc.IEU] = 750
		d.Res[proc.LSU] = 180
		d.Res[proc.L1D] = 120
	case IPFwdIntMul:
		d.Serial = 350
		d.Res[proc.IFU] = 80
		d.Res[proc.IEU] = 600
		d.Res[proc.LSU] = 160
		d.Res[proc.L1D] = 120
	}
	return d
}

// ipfwdProcess is the P thread: look up the next hop by destination IP,
// rewrite the destination MAC, decrement the TTL, fix the header checksum.
type ipfwdProcess struct {
	app      *IPFwdApp
	Packets  uint64
	Dropped  uint64 // TTL expired
	checksum uint64 // accumulator defeating dead-code elimination
}

// Name implements Thread.
func (p *ipfwdProcess) Name() string { return p.app.Name() + "/P" }

// NextHop returns the forwarding decision for a destination IP: the next
// hop of the longest matching prefix in the variant's route table. The
// default route guarantees a match.
func (a *IPFwdApp) NextHop(dstIP uint32) uint32 {
	return a.table.Lookup(dstIP)
}

// Table exposes the route table (tests and examples inspect it).
func (a *IPFwdApp) Table() *RouteTable { return a.table }

// Process implements Thread.
func (p *ipfwdProcess) Process(pkt netgen.Packet) proc.Demand {
	p.Packets++
	d := p.app.processDemand()
	raw := pkt.Raw
	if len(raw) < netgen.EthernetHeaderLen+netgen.IPv4HeaderLen {
		return d
	}
	ip := raw[netgen.EthernetHeaderLen:]
	dstIP := binary.BigEndian.Uint32(ip[16:20])
	hop := p.app.NextHop(dstIP)

	// Rewrite destination MAC from the next-hop identifier.
	binary.BigEndian.PutUint32(raw[0:4], hop)
	raw[4] = 0x02
	raw[5] = byte(hop >> 7)

	// Forwarding semantics: TTL decrement and checksum fix-up.
	if ip[8] == 0 {
		p.Dropped++
	} else {
		ip[8]--
	}
	binary.BigEndian.PutUint16(ip[10:12], netgen.IPv4Checksum(ip[:netgen.IPv4HeaderLen]))

	// The arithmetic kernels of the Figure-1 variants run over payload
	// words; the sink accumulator keeps the work observable.
	switch p.app.variant {
	case IPFwdIntAdd:
		var acc uint32
		for i := netgen.EthernetHeaderLen + netgen.IPv4HeaderLen; i+4 <= len(raw); i += 4 {
			acc += binary.BigEndian.Uint32(raw[i : i+4])
		}
		p.checksum += uint64(acc)
	case IPFwdIntMul:
		acc := uint32(1)
		for i := netgen.EthernetHeaderLen + netgen.IPv4HeaderLen; i+4 <= len(raw); i += 4 {
			acc *= binary.BigEndian.Uint32(raw[i:i+4]) | 1
		}
		p.checksum += uint64(acc)
	default:
		p.checksum += uint64(hop)
	}
	return d
}
