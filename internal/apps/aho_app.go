package apps

import (
	"optassign/internal/netgen"
	"optassign/internal/proc"
)

// AhoCorasickApp is the string-matching benchmark (§4.3): every packet's
// payload is scanned by an Aho-Corasick automaton for a set of
// denial-of-service keywords, as Snort does for its intrusion-detection
// rules. The per-packet cost scales with payload length, so the demand
// model has a per-byte component.
type AhoCorasickApp struct {
	automaton   *Automaton
	meanPayload float64
	keywordRate float64
}

// Per-byte and per-match scanning costs (cycles).
const (
	ahoIEUPerByte  = 1.3
	ahoLSUPerByte  = 0.75
	ahoL1DPerByte  = 0.35
	ahoL2PerByte   = 0.1
	ahoMatchCycles = 40
)

// NewAhoCorasick builds the benchmark for the given traffic profile. The
// profile supplies both the keyword set to search for and the payload-size
// distribution the analytic demand model needs.
func NewAhoCorasick(profile netgen.Profile) *AhoCorasickApp {
	return &AhoCorasickApp{
		automaton:   NewAutomaton(profile.Keywords),
		meanPayload: profile.MeanPayload(),
		keywordRate: profile.KeywordRate,
	}
}

// Name implements App.
func (a *AhoCorasickApp) Name() string { return "Aho-Corasick" }

// Automaton exposes the matcher (examples inspect it).
func (a *AhoCorasickApp) Automaton() *Automaton { return a.automaton }

// NewPipeline implements App.
func (a *AhoCorasickApp) NewPipeline() Pipeline {
	return Pipeline{
		R: &ReceiveThread{},
		P: &ahoProcess{app: a},
		T: &TransmitThread{},
	}
}

// MeanDemands implements App.
func (a *AhoCorasickApp) MeanDemands() [NumStages]proc.Demand {
	d := ahoBaseDemand()
	d.Res[proc.IEU] += ahoIEUPerByte * a.meanPayload
	d.Res[proc.LSU] += ahoLSUPerByte * a.meanPayload
	d.Res[proc.L1D] += ahoL1DPerByte * a.meanPayload
	d.Res[proc.L2] += ahoL2PerByte * a.meanPayload
	// ~one planted keyword per marked packet.
	d.Serial += ahoMatchCycles * a.keywordRate
	return [NumStages]proc.Demand{receiveDemand(), d, transmitDemand()}
}

func ahoBaseDemand() proc.Demand {
	var d proc.Demand
	d.Serial = 40
	d.Res[proc.IFU] = 60
	d.Res[proc.LSU] = 60
	d.Res[proc.L1D] = 60
	return d
}

// ahoProcess is the P thread: scan the payload, count matches.
type ahoProcess struct {
	app     *AhoCorasickApp
	Packets uint64
	Matches uint64
	Hits    uint64 // packets with at least one match
}

// Name implements Thread.
func (p *ahoProcess) Name() string { return "Aho-Corasick/P" }

// MatchStats reports packets scanned, packets with at least one keyword
// occurrence, and total occurrences (integration tests and examples read
// them through the Pipeline).
func (p *ahoProcess) MatchStats() (packets, hits, matches uint64) {
	return p.Packets, p.Hits, p.Matches
}

// Process implements Thread.
func (p *ahoProcess) Process(pkt netgen.Packet) proc.Demand {
	p.Packets++
	payload := pkt.Payload()
	n := p.app.automaton.Search(payload, nil)
	if n > 0 {
		p.Hits++
		p.Matches += uint64(n)
	}
	d := ahoBaseDemand()
	size := float64(len(payload))
	d.Res[proc.IEU] += ahoIEUPerByte * size
	d.Res[proc.LSU] += ahoLSUPerByte * size
	d.Res[proc.L1D] += ahoL1DPerByte * size
	d.Res[proc.L2] += ahoL2PerByte * size
	d.Serial += ahoMatchCycles * float64(n)
	return d
}
