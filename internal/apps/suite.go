package apps

import (
	"fmt"

	"optassign/internal/netgen"
)

// ByName instantiates a benchmark by its display name, accepting every
// member of the suite plus the two Figure-1 variants. It is the single
// registry the CLIs and the experiment harness share.
func ByName(name string, profile netgen.Profile) (App, error) {
	switch name {
	case "Aho-Corasick":
		return NewAhoCorasick(profile), nil
	case "IPFwd-L1":
		return NewIPFwd(IPFwdL1), nil
	case "IPFwd-Mem":
		return NewIPFwd(IPFwdMem), nil
	case "Packet-analyzer":
		return NewAnalyzer(), nil
	case "Stateful":
		return NewStateful(), nil
	case "IPFwd-intadd":
		return NewIPFwd(IPFwdIntAdd), nil
	case "IPFwd-intmul":
		return NewIPFwd(IPFwdIntMul), nil
	default:
		return nil, fmt.Errorf("apps: unknown benchmark %q", name)
	}
}

// Suite returns the paper's five-benchmark suite (§4.3) in the order the
// result figures list them: Aho-Corasick, IPFwd-L1, IPFwd-Mem,
// Packet-analyzer, Stateful.
func Suite(profile netgen.Profile) []App {
	return []App{
		NewAhoCorasick(profile),
		NewIPFwd(IPFwdL1),
		NewIPFwd(IPFwdMem),
		NewAnalyzer(),
		NewStateful(),
	}
}

// Figure1Apps returns the two motivation-study benchmarks of Figure 1.
func Figure1Apps() []App {
	return []App{NewIPFwd(IPFwdIntAdd), NewIPFwd(IPFwdIntMul)}
}
