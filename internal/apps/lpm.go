package apps

import (
	"fmt"
	"math/rand"
)

// RouteTable is a longest-prefix-match IPv4 forwarding table implemented as
// a binary trie: routes hang off the bit-path of their prefix and a lookup
// walks the destination address from the most significant bit, remembering
// the deepest route passed. This is the functional heart of the IPFwd
// benchmark — the *size* of the table is what separates the paper's
// IPFwd-L1 (cache-resident) and IPFwd-Mem (DRAM-walking) variants, and the
// demand vectors in ipfwd.go model exactly that difference.
type RouteTable struct {
	root   *trieNode
	routes int
}

type trieNode struct {
	child   [2]*trieNode
	nextHop uint32 // 0 = no route terminates here
}

// NewRouteTable returns an empty table (no default route).
func NewRouteTable() *RouteTable { return &RouteTable{root: &trieNode{}} }

// Routes returns the number of distinct prefixes inserted.
func (t *RouteTable) Routes() int { return t.routes }

// Insert adds (or overwrites) the route addr/length → nextHop. Next hop 0
// is reserved for "no route". A length of 0 installs the default route.
func (t *RouteTable) Insert(addr uint32, length int, nextHop uint32) error {
	switch {
	case length < 0 || length > 32:
		return fmt.Errorf("apps: prefix length %d out of range", length)
	case nextHop == 0:
		return fmt.Errorf("apps: next hop 0 is reserved for no-route")
	}
	n := t.root
	for bit := 0; bit < length; bit++ {
		b := (addr >> (31 - bit)) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if n.nextHop == 0 {
		t.routes++
	}
	n.nextHop = nextHop
	return nil
}

// Lookup returns the next hop of the longest matching prefix for addr,
// or 0 when no route matches.
func (t *RouteTable) Lookup(addr uint32) uint32 {
	best := uint32(0)
	n := t.root
	for bit := 0; n != nil; bit++ {
		if n.nextHop != 0 {
			best = n.nextHop
		}
		if bit == 32 {
			break
		}
		n = n.child[(addr>>(31-bit))&1]
	}
	return best
}

// PopulateRandom fills the table with n deterministic pseudo-random routes
// whose prefix-length mix resembles a backbone table (mostly /16–/24 with
// a tail of longer prefixes) plus a default route, so every lookup
// resolves. Used to build the IPFwd benchmark tables.
func (t *RouteTable) PopulateRandom(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if err := t.Insert(0, 0, 1); err != nil { // default route, hop 1
		return err
	}
	for i := 0; i < n; i++ {
		var length int
		switch r := rng.Float64(); {
		case r < 0.05:
			length = 8 + rng.Intn(8) // /8../15
		case r < 0.85:
			length = 16 + rng.Intn(9) // /16../24
		default:
			length = 25 + rng.Intn(8) // /25../32
		}
		addr := rng.Uint32()
		hop := uint32(2 + rng.Intn(1<<20))
		if err := t.Insert(addr, length, hop); err != nil {
			return err
		}
	}
	return nil
}
