package apps

import (
	"sync"

	"optassign/internal/netgen"
)

// FlowState classifies a tracked flow, mirroring the flow-record contents
// described for the paper's stateful benchmark (open / safe / malicious).
type FlowState uint8

// Flow states.
const (
	FlowOpen FlowState = iota
	FlowSafe
	FlowMalicious
)

// FlowRecord is the per-flow state kept by stateful packet processing.
type FlowRecord struct {
	Key     netgen.FlowKey
	Packets uint64
	Bytes   uint64
	State   FlowState
}

// flowTableBuckets is the paper's hash table size: 2^16 entries, "sufficient
// to store the records of active flows of a fully-utilized 10Gb link".
const flowTableBuckets = 1 << 16

// flowTableShards is the number of independent bucket locks. Like nProbe's
// table, concurrent processing threads lock only the region they touch.
const flowTableShards = 64

// FlowTable is a fixed-size chained hash table of flow records shared by
// every stateful pipeline instance, with sharded locking. The hash is
// FNV-1a over the 5-tuple, the same family of cheap multiplicative hashes
// used by the nProbe monitor the paper borrows its hash function from.
type FlowTable struct {
	buckets [flowTableBuckets]*flowEntry
	locks   [flowTableShards]sync.Mutex
	counts  [flowTableShards]int // flows created, per shard
}

type flowEntry struct {
	rec  FlowRecord
	next *flowEntry
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable { return &FlowTable{} }

// HashFlowKey computes the FNV-1a hash of a 5-tuple.
func HashFlowKey(k netgen.FlowKey) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	for shift := 24; shift >= 0; shift -= 8 {
		mix(byte(k.SrcIP >> shift))
	}
	for shift := 24; shift >= 0; shift -= 8 {
		mix(byte(k.DstIP >> shift))
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	// Final fold: bucket selection masks to the low 16 bits, so push the
	// high-bit entropy down before the caller truncates.
	return h ^ (h >> 16)
}

// Update locks the key's bucket region, then creates or updates the flow
// record (the lock-read-update step of §4.3's stateful benchmark). It
// returns whether the flow is new and the record's packet count after the
// update.
func (t *FlowTable) Update(key netgen.FlowKey, bytes int, state FlowState) (isNew bool, packets uint64) {
	b := HashFlowKey(key) % flowTableBuckets
	shard := b % flowTableShards
	t.locks[shard].Lock()
	defer t.locks[shard].Unlock()

	for e := t.buckets[b]; e != nil; e = e.next {
		if e.rec.Key == key {
			e.rec.Packets++
			e.rec.Bytes += uint64(bytes)
			if state == FlowMalicious {
				e.rec.State = FlowMalicious
			} else if e.rec.State == FlowOpen && e.rec.Packets >= 3 {
				// A few well-formed packets promote the flow to safe.
				e.rec.State = FlowSafe
			}
			return false, e.rec.Packets
		}
	}
	t.buckets[b] = &flowEntry{
		rec:  FlowRecord{Key: key, Packets: 1, Bytes: uint64(bytes), State: state},
		next: t.buckets[b],
	}
	t.counts[shard]++
	return true, 1
}

// Lookup returns a copy of the record for key, if present.
func (t *FlowTable) Lookup(key netgen.FlowKey) (FlowRecord, bool) {
	b := HashFlowKey(key) % flowTableBuckets
	shard := b % flowTableShards
	t.locks[shard].Lock()
	defer t.locks[shard].Unlock()
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.rec.Key == key {
			return e.rec, true
		}
	}
	return FlowRecord{}, false
}

// Flows returns the number of distinct flows ever inserted.
func (t *FlowTable) Flows() int {
	total := 0
	for i := range t.locks {
		t.locks[i].Lock()
		total += t.counts[i]
		t.locks[i].Unlock()
	}
	return total
}
