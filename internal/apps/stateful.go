package apps

import (
	"optassign/internal/netgen"
	"optassign/internal/proc"
)

// StatefulApp is the stateful packet-processing benchmark (§4.3): unlike
// the stateless suite members it keeps information across packets — every
// packet's 5-tuple is hashed into a 2^16-entry flow table whose record is
// locked, read and updated (or created for a new flow). All pipeline
// instances of one StatefulApp share the same table, so the processing
// threads really contend on its locks.
type StatefulApp struct {
	table *FlowTable
}

// NewStateful builds the benchmark with a fresh shared flow table.
func NewStateful() *StatefulApp { return &StatefulApp{table: NewFlowTable()} }

// Name implements App.
func (a *StatefulApp) Name() string { return "Stateful" }

// Table exposes the shared flow table (examples and tests read it).
func (a *StatefulApp) Table() *FlowTable { return a.table }

// NewPipeline implements App.
func (a *StatefulApp) NewPipeline() Pipeline {
	return Pipeline{
		R: &ReceiveThread{},
		P: &statefulProcess{app: a},
		T: &TransmitThread{},
	}
}

// MeanDemands implements App.
func (a *StatefulApp) MeanDemands() [NumStages]proc.Demand {
	return [NumStages]proc.Demand{receiveDemand(), statefulDemand(), transmitDemand()}
}

func statefulDemand() proc.Demand {
	var d proc.Demand
	d.Serial = 10
	d.Res[proc.IFU] = 10
	d.Res[proc.IEU] = 800
	d.Res[proc.LSU] = 450
	d.Res[proc.L1D] = 60
	d.Res[proc.TLB] = 20
	d.Res[proc.L2] = 160
	d.Res[proc.MEM] = 80
	d.Res[proc.XBAR] = 10
	return d
}

// statefulProcess is the P thread: extract flow keys, hash, lock, update.
type statefulProcess struct {
	app      *StatefulApp
	Packets  uint64
	NewFlows uint64
	Errors   uint64
}

// Name implements Thread.
func (p *statefulProcess) Name() string { return "Stateful/P" }

// Process implements Thread.
func (p *statefulProcess) Process(pkt netgen.Packet) proc.Demand {
	p.Packets++
	d := statefulDemand()
	h, err := pkt.Decode()
	if err != nil {
		p.Errors++
		return d
	}
	state := FlowOpen
	if h.TTL < 5 {
		// Suspiciously low TTL marks the flow, standing in for the
		// malicious-classification hooks of real monitors.
		state = FlowMalicious
	}
	isNew, _ := p.app.table.Update(h.Key(), len(pkt.Raw), state)
	if isNew {
		p.NewFlows++
	}
	return d
}
