package apps

import (
	"strconv"

	"optassign/internal/netgen"
	"optassign/internal/proc"
)

// AnalyzerApp is the packet-analyzer benchmark (§4.3): it decodes every
// packet that passes the NIU and logs MAC addresses, TTL, the L3 protocol,
// IP addresses and port numbers — the exact field set the paper lists — to
// an in-memory log ring, optionally through a user filter.
type AnalyzerApp struct {
	// Filter decides whether a decoded packet is logged. nil logs all
	// traffic, the configuration used in the paper's experiments.
	Filter func(h netgen.Header) bool
}

// NewAnalyzer builds the analyzer benchmark with no filter (log everything).
func NewAnalyzer() *AnalyzerApp { return &AnalyzerApp{} }

// Name implements App.
func (a *AnalyzerApp) Name() string { return "Packet-analyzer" }

// NewPipeline implements App.
func (a *AnalyzerApp) NewPipeline() Pipeline {
	return Pipeline{
		R: &ReceiveThread{},
		P: &analyzerProcess{app: a, ring: make([]byte, 1<<16)},
		T: &TransmitThread{},
	}
}

// MeanDemands implements App.
func (a *AnalyzerApp) MeanDemands() [NumStages]proc.Demand {
	return [NumStages]proc.Demand{receiveDemand(), analyzerDemand(), transmitDemand()}
}

func analyzerDemand() proc.Demand {
	var d proc.Demand
	d.Serial = 40
	d.Res[proc.IFU] = 60
	d.Res[proc.IEU] = 700
	d.Res[proc.LSU] = 390
	d.Res[proc.L1D] = 170
	d.Res[proc.TLB] = 20
	d.Res[proc.L2] = 10
	d.Res[proc.MEM] = 0
	d.Res[proc.XBAR] = 10
	return d
}

// analyzerProcess is the P thread: decode, filter, format, log.
type analyzerProcess struct {
	app      *AnalyzerApp
	ring     []byte // log ring buffer
	head     int
	Logged   uint64
	Filtered uint64
	Errors   uint64
	lastLine []byte // most recent log line, exposed for tests
}

// Name implements Thread.
func (p *analyzerProcess) Name() string { return "Packet-analyzer/P" }

// Process implements Thread.
func (p *analyzerProcess) Process(pkt netgen.Packet) proc.Demand {
	d := analyzerDemand()
	h, err := pkt.Decode()
	if err != nil {
		p.Errors++
		return d
	}
	if p.app.Filter != nil && !p.app.Filter(h) {
		p.Filtered++
		return d
	}
	p.Logged++
	p.lastLine = formatLogLine(p.lastLine[:0], h)
	p.writeRing(p.lastLine)
	return d
}

// formatLogLine renders the paper's field set without fmt (Netra DPS
// threads avoid heavyweight runtime services).
func formatLogLine(buf []byte, h netgen.Header) []byte {
	buf = appendMAC(buf, h.SrcMAC)
	buf = append(buf, ' ')
	buf = appendMAC(buf, h.DstMAC)
	buf = append(buf, " ttl="...)
	buf = strconv.AppendUint(buf, uint64(h.TTL), 10)
	buf = append(buf, " proto="...)
	buf = strconv.AppendUint(buf, uint64(h.Proto), 10)
	buf = append(buf, ' ')
	buf = append(buf, netgen.IPString(h.SrcIP)...)
	buf = append(buf, ':')
	buf = strconv.AppendUint(buf, uint64(h.SrcPort), 10)
	buf = append(buf, " > "...)
	buf = append(buf, netgen.IPString(h.DstIP)...)
	buf = append(buf, ':')
	buf = strconv.AppendUint(buf, uint64(h.DstPort), 10)
	buf = append(buf, '\n')
	return buf
}

const hexDigits = "0123456789abcdef"

func appendMAC(buf []byte, mac [6]byte) []byte {
	for i, b := range mac {
		if i > 0 {
			buf = append(buf, ':')
		}
		buf = append(buf, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return buf
}

// writeRing copies a line into the ring buffer, wrapping at the end.
func (p *analyzerProcess) writeRing(line []byte) {
	for len(line) > 0 {
		n := copy(p.ring[p.head:], line)
		p.head += n
		if p.head == len(p.ring) {
			p.head = 0
		}
		line = line[n:]
	}
}
