// Package apps implements the paper's benchmark suite (§4.3) as real
// packet-processing code: the two IPFwd memory-behaviour variants
// (IPFwd-L1, IPFwd-Mem), the IPFwd-intadd / IPFwd-intmul pair from the
// Figure-1 motivation study, the packet analyzer, Aho-Corasick keyword
// matching over payloads (with a from-scratch automaton), and stateful flow
// tracking over a 2^16-entry hash table.
//
// Every benchmark follows the paper's 3-thread software pipeline (Fig. 9):
// a receive thread (R) takes packets from the NIU and pushes pointers into
// a memory queue, a processing thread (P) does the benchmark-specific work,
// and a transmit thread (T) sends packets back out. Threads do their actual
// work on real packet bytes and report the per-packet resource demand that
// the processor model charges for it.
package apps

import (
	"fmt"

	"optassign/internal/netgen"
	"optassign/internal/proc"
)

// Stage indexes the three pipeline threads.
type Stage int

// Pipeline stages in order.
const (
	Receive Stage = iota
	Process
	Transmit
	NumStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case Receive:
		return "R"
	case Process:
		return "P"
	case Transmit:
		return "T"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Thread handles one packet at a time and reports the hardware resources
// the handling consumed. Implementations keep per-thread state (lookup
// tables, automata, counters) exactly like the Netra DPS threads they
// model; Process is called from a single goroutine per thread.
type Thread interface {
	Name() string
	Process(pkt netgen.Packet) proc.Demand
}

// Pipeline is one benchmark instance: the R→P→T thread triple connected by
// memory queues.
type Pipeline struct {
	R, P, T Thread
}

// Threads returns the pipeline's threads in stage order.
func (p Pipeline) Threads() [NumStages]Thread { return [NumStages]Thread{p.R, p.P, p.T} }

// App is a benchmark: a factory for fresh pipeline instances plus the
// expected per-stage demand the analytic solver uses. MeanDemands must be
// the expectation of what the threads actually report to keep the
// discrete-event engine and the analytic solver consistent (they are
// cross-validated in internal/netdps tests).
type App interface {
	Name() string
	NewPipeline() Pipeline
	MeanDemands() [NumStages]proc.Demand
}

// CommVolume is the per-packet queue-communication volume between adjacent
// stages, identical for all benchmarks (one packet handoff per stage pair).
const CommVolume = 1.0

// --- Shared receive and transmit threads -------------------------------

// receiveDemand is the fixed footprint of pulling a packet from the NIU DMA
// ring and publishing it on the R→P queue.
func receiveDemand() proc.Demand {
	var d proc.Demand
	d.Serial = 60
	d.Res[proc.IFU] = 30
	d.Res[proc.IEU] = 50
	d.Res[proc.LSU] = 120
	d.Res[proc.L1D] = 60
	d.Res[proc.XBAR] = 40
	return d
}

// transmitDemand is the fixed footprint of draining the P→T queue and
// handing the packet to the NIU transmit ring.
func transmitDemand() proc.Demand {
	var d proc.Demand
	d.Serial = 60
	d.Res[proc.IFU] = 30
	d.Res[proc.IEU] = 60
	d.Res[proc.LSU] = 110
	d.Res[proc.L1D] = 60
	d.Res[proc.XBAR] = 40
	return d
}

// ReceiveThread models the R stage: it validates the frame as it arrives
// from the NIU (ethertype + header sanity) and counts traffic.
type ReceiveThread struct {
	Packets uint64
	Bytes   uint64
	BadEth  uint64
}

// Name implements Thread.
func (r *ReceiveThread) Name() string { return "R" }

// Process implements Thread.
func (r *ReceiveThread) Process(pkt netgen.Packet) proc.Demand {
	r.Packets++
	r.Bytes += uint64(len(pkt.Raw))
	if len(pkt.Raw) < netgen.EthernetHeaderLen ||
		pkt.Raw[12] != 0x08 || pkt.Raw[13] != 0x00 {
		r.BadEth++
	}
	return receiveDemand()
}

// TransmitThread models the T stage: it recomputes the IPv4 header checksum
// (the forwarding path rewrote headers) and counts what goes out.
type TransmitThread struct {
	Packets uint64
	Bytes   uint64
	BadSum  uint64
}

// Name implements Thread.
func (t *TransmitThread) Name() string { return "T" }

// Process implements Thread.
func (t *TransmitThread) Process(pkt netgen.Packet) proc.Demand {
	t.Packets++
	t.Bytes += uint64(len(pkt.Raw))
	if !pkt.VerifyIPv4Checksum() {
		t.BadSum++
	}
	return transmitDemand()
}
