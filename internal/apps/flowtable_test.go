package apps

import (
	"math/rand"
	"sync"
	"testing"

	"optassign/internal/netgen"
)

func mkKey(i int) netgen.FlowKey {
	return netgen.FlowKey{
		SrcIP: uint32(0x0a000000 + i), DstIP: 0xc0a80001,
		SrcPort: uint16(1000 + i%60000), DstPort: 80, Proto: netgen.ProtoTCP,
	}
}

func TestFlowTableBasic(t *testing.T) {
	ft := NewFlowTable()
	k := mkKey(1)
	isNew, pkts := ft.Update(k, 100, FlowOpen)
	if !isNew || pkts != 1 {
		t.Errorf("first update: new=%v pkts=%d", isNew, pkts)
	}
	isNew, pkts = ft.Update(k, 50, FlowOpen)
	if isNew || pkts != 2 {
		t.Errorf("second update: new=%v pkts=%d", isNew, pkts)
	}
	rec, ok := ft.Lookup(k)
	if !ok || rec.Packets != 2 || rec.Bytes != 150 {
		t.Errorf("lookup: %+v ok=%v", rec, ok)
	}
	if _, ok := ft.Lookup(mkKey(2)); ok {
		t.Error("lookup of absent flow succeeded")
	}
	if ft.Flows() != 1 {
		t.Errorf("Flows = %d", ft.Flows())
	}
}

func TestFlowTableStateTransitions(t *testing.T) {
	ft := NewFlowTable()
	k := mkKey(7)
	ft.Update(k, 10, FlowOpen)
	rec, _ := ft.Lookup(k)
	if rec.State != FlowOpen {
		t.Errorf("state after 1 pkt = %v", rec.State)
	}
	ft.Update(k, 10, FlowOpen)
	ft.Update(k, 10, FlowOpen) // third packet promotes to safe
	rec, _ = ft.Lookup(k)
	if rec.State != FlowSafe {
		t.Errorf("state after 3 pkts = %v", rec.State)
	}
	ft.Update(k, 10, FlowMalicious) // malicious sticks
	ft.Update(k, 10, FlowOpen)
	rec, _ = ft.Lookup(k)
	if rec.State != FlowMalicious {
		t.Errorf("state after malicious = %v", rec.State)
	}
}

func TestFlowTableManyFlowsAndCollisions(t *testing.T) {
	ft := NewFlowTable()
	const n = 200000 // > 2^16 buckets: chains must handle collisions
	for i := 0; i < n; i++ {
		ft.Update(mkKey(i), 1, FlowOpen)
	}
	if ft.Flows() != n {
		t.Errorf("Flows = %d, want %d", ft.Flows(), n)
	}
	// Every flow is still retrievable with the right count.
	for i := 0; i < n; i += 9973 {
		rec, ok := ft.Lookup(mkKey(i))
		if !ok || rec.Packets != 1 {
			t.Fatalf("flow %d: %+v ok=%v", i, rec, ok)
		}
	}
}

func TestFlowTableConcurrentUpdates(t *testing.T) {
	ft := NewFlowTable()
	const (
		workers = 8
		flows   = 512
		perW    = 4000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				ft.Update(mkKey(rng.Intn(flows)), 1, FlowOpen)
			}
		}(int64(w))
	}
	wg.Wait()
	if ft.Flows() > flows {
		t.Errorf("Flows = %d, want <= %d", ft.Flows(), flows)
	}
	// Total packet count across all flows must equal all updates.
	var total uint64
	for i := 0; i < flows; i++ {
		if rec, ok := ft.Lookup(mkKey(i)); ok {
			total += rec.Packets
		}
	}
	if total != workers*perW {
		t.Errorf("total packets = %d, want %d", total, workers*perW)
	}
}

func TestHashFlowKeyDisperses(t *testing.T) {
	// Nearby keys should not collide systematically.
	buckets := make(map[uint32]int)
	for i := 0; i < 10000; i++ {
		buckets[HashFlowKey(mkKey(i))%flowTableBuckets]++
	}
	if len(buckets) < 8000 {
		t.Errorf("10000 sequential keys landed in only %d buckets", len(buckets))
	}
	// Deterministic.
	if HashFlowKey(mkKey(3)) != HashFlowKey(mkKey(3)) {
		t.Error("hash not deterministic")
	}
}
