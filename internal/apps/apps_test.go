package apps

import (
	"math"
	"strings"
	"testing"

	"optassign/internal/netgen"
	"optassign/internal/proc"
)

func testGen(t *testing.T, seed int64) *netgen.Generator {
	t.Helper()
	g, err := netgen.NewGenerator(netgen.DefaultProfile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStageString(t *testing.T) {
	if Receive.String() != "R" || Process.String() != "P" || Transmit.String() != "T" {
		t.Error("stage names")
	}
	if Stage(9).String() == "" {
		t.Error("out-of-range stage name")
	}
}

func TestSuiteComposition(t *testing.T) {
	suite := Suite(netgen.DefaultProfile())
	if len(suite) != 5 {
		t.Fatalf("suite size %d", len(suite))
	}
	names := make(map[string]bool)
	for _, app := range suite {
		names[app.Name()] = true
		p := app.NewPipeline()
		for _, th := range p.Threads() {
			if th == nil || th.Name() == "" {
				t.Errorf("%s: incomplete pipeline", app.Name())
			}
		}
		for s, d := range app.MeanDemands() {
			if d.Base() <= 0 {
				t.Errorf("%s stage %v: non-positive demand", app.Name(), Stage(s))
			}
		}
	}
	for _, want := range []string{"Aho-Corasick", "IPFwd-L1", "IPFwd-Mem", "Packet-analyzer", "Stateful"} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
	f1 := Figure1Apps()
	if len(f1) != 2 || f1[0].Name() != "IPFwd-intadd" || f1[1].Name() != "IPFwd-intmul" {
		t.Errorf("Figure1Apps = %v", f1)
	}
}

func TestIPFwdForwardingSemantics(t *testing.T) {
	app := NewIPFwd(IPFwdL1)
	p := app.NewPipeline()
	gen := testGen(t, 1)
	pkt := gen.Next()
	before, err := pkt.Decode()
	if err != nil {
		t.Fatal(err)
	}
	p.R.Process(pkt)
	p.P.Process(pkt)
	p.T.Process(pkt)
	after, err := pkt.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if after.TTL != before.TTL-1 {
		t.Errorf("TTL %d -> %d, want decrement", before.TTL, after.TTL)
	}
	if !pkt.VerifyIPv4Checksum() {
		t.Error("checksum not fixed after TTL decrement")
	}
	// Destination MAC rewritten to the next hop.
	wantHop := app.NextHop(before.DstIP)
	gotHop := uint32(after.DstMAC[0])<<24 | uint32(after.DstMAC[1])<<16 | uint32(after.DstMAC[2])<<8 | uint32(after.DstMAC[3])
	if gotHop != wantHop {
		t.Errorf("dst MAC hop = %x, want %x", gotHop, wantHop)
	}
	tt := p.T.(*TransmitThread)
	if tt.BadSum != 0 {
		t.Errorf("transmit saw %d bad checksums", tt.BadSum)
	}
}

func TestIPFwdNextHopDeterministic(t *testing.T) {
	a1, a2 := NewIPFwd(IPFwdMem), NewIPFwd(IPFwdMem)
	for ip := uint32(0); ip < 1000; ip += 13 {
		if a1.NextHop(ip) != a2.NextHop(ip) {
			t.Fatal("NextHop differs between identical tables")
		}
	}
}

func TestIPFwdVariantsHaveDistinctProfiles(t *testing.T) {
	l1 := NewIPFwd(IPFwdL1).MeanDemands()[Process]
	mem := NewIPFwd(IPFwdMem).MeanDemands()[Process]
	add := NewIPFwd(IPFwdIntAdd).MeanDemands()[Process]
	mul := NewIPFwd(IPFwdIntMul).MeanDemands()[Process]
	if !(mem.Res[proc.MEM] > l1.Res[proc.MEM]) {
		t.Error("IPFwd-Mem should press memory harder than IPFwd-L1")
	}
	if !(l1.Res[proc.L1D] > mem.Res[proc.L1D]) {
		t.Error("IPFwd-L1 should press L1D harder than IPFwd-Mem")
	}
	if !(add.Res[proc.IEU] > mul.Res[proc.IEU]) {
		t.Error("intadd should press the IEU harder than intmul")
	}
	if !(mul.Serial > add.Serial) {
		t.Error("intmul should have the larger serial (private multiplier) component")
	}
	for _, v := range []IPFwdVariant{IPFwdL1, IPFwdMem, IPFwdIntAdd, IPFwdIntMul, IPFwdVariant(99)} {
		if v.String() == "" {
			t.Error("empty variant name")
		}
	}
}

func TestIPFwdTTLExpiry(t *testing.T) {
	app := NewIPFwd(IPFwdL1)
	pipe := app.NewPipeline()
	pkt := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoUDP, 0 /* ttl */, 1, 2, []byte("x"))
	pipe.P.Process(pkt)
	if pipe.P.(*ipfwdProcess).Dropped != 1 {
		t.Error("TTL=0 packet not counted as dropped")
	}
}

func TestAnalyzerLogsPaperFields(t *testing.T) {
	app := NewAnalyzer()
	pipe := app.NewPipeline()
	pkt := netgen.Build([6]byte{0xaa, 0xbb, 0, 0, 0, 1}, [6]byte{0xcc, 0xdd, 0, 0, 0, 2},
		0x0a000001, 0xc0a80002, netgen.ProtoTCP, 77, 1234, 443, []byte("payload"))
	pipe.P.Process(pkt)
	ap := pipe.P.(*analyzerProcess)
	if ap.Logged != 1 {
		t.Fatalf("Logged = %d", ap.Logged)
	}
	line := string(ap.lastLine)
	for _, want := range []string{"aa:bb:00:00:00:01", "cc:dd:00:00:00:02", "ttl=77", "proto=6", "10.0.0.1:1234", "192.168.0.2:443"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
}

func TestAnalyzerFilter(t *testing.T) {
	app := NewAnalyzer()
	app.Filter = func(h netgen.Header) bool { return h.DstPort == 80 }
	pipe := app.NewPipeline()
	hit := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoTCP, 64, 1, 80, nil)
	miss := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoTCP, 64, 1, 443, nil)
	pipe.P.Process(hit)
	pipe.P.Process(miss)
	ap := pipe.P.(*analyzerProcess)
	if ap.Logged != 1 || ap.Filtered != 1 {
		t.Errorf("logged=%d filtered=%d", ap.Logged, ap.Filtered)
	}
}

func TestAnalyzerRingWrap(t *testing.T) {
	app := NewAnalyzer()
	pipe := app.NewPipeline()
	ap := pipe.P.(*analyzerProcess)
	ap.ring = make([]byte, 64) // tiny ring to force wrapping
	gen := testGen(t, 2)
	for i := 0; i < 10; i++ {
		pipe.P.Process(gen.Next())
	}
	if ap.Logged != 10 {
		t.Errorf("Logged = %d", ap.Logged)
	}
	if ap.Errors != 0 {
		t.Errorf("Errors = %d", ap.Errors)
	}
}

func TestAnalyzerBrokenPacket(t *testing.T) {
	pipe := NewAnalyzer().NewPipeline()
	pipe.P.Process(netgen.Packet{Raw: []byte{1, 2, 3}})
	if pipe.P.(*analyzerProcess).Errors != 1 {
		t.Error("decode error not counted")
	}
}

func TestAhoAppCountsPlantedKeywords(t *testing.T) {
	profile := netgen.DefaultProfile()
	profile.KeywordRate = 1.0
	app := NewAhoCorasick(profile)
	pipe := app.NewPipeline()
	gen, err := netgen.NewGenerator(profile, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		pipe.P.Process(gen.Next())
	}
	ap := pipe.P.(*ahoProcess)
	if ap.Packets != n {
		t.Errorf("Packets = %d", ap.Packets)
	}
	// Every packet has a planted keyword; a handful may be overwritten by
	// a longer payload boundary but the vast majority must hit.
	if ap.Hits < n*95/100 {
		t.Errorf("Hits = %d of %d with rate 1.0", ap.Hits, n)
	}
	if ap.Matches < ap.Hits {
		t.Errorf("Matches %d < Hits %d", ap.Matches, ap.Hits)
	}
}

func TestAhoAppDemandScalesWithPayload(t *testing.T) {
	app := NewAhoCorasick(netgen.DefaultProfile())
	pipe := app.NewPipeline()
	small := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoUDP, 64, 1, 2, make([]byte, 64))
	large := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoUDP, 64, 1, 2, make([]byte, 1024))
	ds := pipe.P.Process(small)
	dl := pipe.P.Process(large)
	if !(dl.Base() > ds.Base()) {
		t.Errorf("demand should grow with payload: %v vs %v", ds.Base(), dl.Base())
	}
	wantDelta := (ahoIEUPerByte + ahoLSUPerByte + ahoL1DPerByte + ahoL2PerByte) * (1024 - 64)
	if math.Abs((dl.Base()-ds.Base())-wantDelta) > 1 {
		t.Errorf("per-byte delta = %v, want %v", dl.Base()-ds.Base(), wantDelta)
	}
}

func TestStatefulTracksFlows(t *testing.T) {
	app := NewStateful()
	pipe := app.NewPipeline()
	profile := netgen.DefaultProfile()
	profile.Flows = 64
	gen, err := netgen.NewGenerator(profile, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		pipe.P.Process(gen.Next())
	}
	sp := pipe.P.(*statefulProcess)
	if sp.Packets != n || sp.Errors != 0 {
		t.Errorf("packets=%d errors=%d", sp.Packets, sp.Errors)
	}
	flows := app.Table().Flows()
	if flows < 30 || flows > 64 {
		t.Errorf("tracked %d flows, expect <= 64 with Zipf reuse", flows)
	}
	if uint64(flows) != sp.NewFlows {
		t.Errorf("NewFlows %d != table flows %d", sp.NewFlows, flows)
	}
}

func TestStatefulInstancesShareTable(t *testing.T) {
	app := NewStateful()
	p1, p2 := app.NewPipeline(), app.NewPipeline()
	pkt := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoUDP, 64, 9, 9, []byte("x"))
	p1.P.Process(pkt)
	p2.P.Process(pkt)
	h, _ := pkt.Decode()
	rec, ok := app.Table().Lookup(h.Key())
	if !ok || rec.Packets != 2 {
		t.Errorf("shared table record: %+v ok=%v", rec, ok)
	}
}

func TestStatefulMarksLowTTLMalicious(t *testing.T) {
	app := NewStateful()
	pipe := app.NewPipeline()
	pkt := netgen.Build([6]byte{}, [6]byte{}, 5, 6, netgen.ProtoUDP, 2 /* ttl < 5 */, 7, 8, nil)
	pipe.P.Process(pkt)
	h, _ := pkt.Decode()
	rec, ok := app.Table().Lookup(h.Key())
	if !ok || rec.State != FlowMalicious {
		t.Errorf("record = %+v ok=%v", rec, ok)
	}
}

// TestMeanDemandsMatchObservedDemands is the contract between the analytic
// solver and the event engine: the advertised expectation must track what
// the threads actually report on live traffic.
func TestMeanDemandsMatchObservedDemands(t *testing.T) {
	profile := netgen.DefaultProfile()
	for _, app := range append(Suite(profile), Figure1Apps()...) {
		gen, err := netgen.NewGenerator(profile, 99)
		if err != nil {
			t.Fatal(err)
		}
		pipe := app.NewPipeline()
		const n = 3000
		var got [NumStages]float64
		for i := 0; i < n; i++ {
			pkt := gen.Next()
			got[Receive] += pipe.R.Process(pkt).Base()
			got[Process] += pipe.P.Process(pkt).Base()
			got[Transmit] += pipe.T.Process(pkt).Base()
		}
		want := app.MeanDemands()
		for s := 0; s < int(NumStages); s++ {
			mean := got[s] / n
			if math.Abs(mean-want[s].Base())/want[s].Base() > 0.03 {
				t.Errorf("%s stage %v: observed mean %.1f, advertised %.1f",
					app.Name(), Stage(s), mean, want[s].Base())
			}
		}
	}
}

func TestReceiveTransmitCounters(t *testing.T) {
	r, tr := &ReceiveThread{}, &TransmitThread{}
	gen := testGen(t, 5)
	for i := 0; i < 10; i++ {
		pkt := gen.Next()
		r.Process(pkt)
		tr.Process(pkt)
	}
	if r.Packets != 10 || tr.Packets != 10 || r.Bytes == 0 || tr.Bytes == 0 {
		t.Errorf("counters: %+v %+v", r, tr)
	}
	if r.BadEth != 0 || tr.BadSum != 0 {
		t.Errorf("spurious errors: %+v %+v", r, tr)
	}
	r.Process(netgen.Packet{Raw: []byte{0}})
	if r.BadEth != 1 {
		t.Error("bad ethernet frame not counted")
	}
}
