package apps

import (
	"testing"

	"optassign/internal/netgen"
)

func hdr(proto uint8, ttl uint8, srcIP, dstIP uint32, sp, dp uint16, length int) netgen.Header {
	return netgen.Header{Proto: proto, TTL: ttl, SrcIP: srcIP, DstIP: dstIP, SrcPort: sp, DstPort: dp, Length: length}
}

func TestCompileFilterBasics(t *testing.T) {
	cases := []struct {
		expr string
		h    netgen.Header
		want bool
	}{
		{"proto == tcp", hdr(6, 64, 1, 2, 1000, 80, 100), true},
		{"proto == udp", hdr(6, 64, 1, 2, 1000, 80, 100), false},
		{"proto != udp", hdr(6, 64, 1, 2, 1000, 80, 100), true},
		{"dstport < 1024", hdr(6, 64, 1, 2, 1000, 80, 100), true},
		{"dstport >= 1024", hdr(6, 64, 1, 2, 1000, 80, 100), false},
		{"ttl <= 5", hdr(6, 3, 1, 2, 1, 2, 100), true},
		{"len > 512", hdr(6, 64, 1, 2, 1, 2, 600), true},
		{"srcip == 10.0.0.1", hdr(6, 64, 0x0a000001, 2, 1, 2, 100), true},
		{"dstip == 192.168.0.1", hdr(6, 64, 1, 0xc0a80001, 1, 2, 100), true},
		{"dstip == 192.168.0.2", hdr(6, 64, 1, 0xc0a80001, 1, 2, 100), false},
		{"srcport > 1023 && dstport == 80", hdr(6, 64, 1, 2, 5000, 80, 100), true},
		{"srcport > 1023 && dstport == 80", hdr(6, 64, 1, 2, 100, 80, 100), false},
		{"dstport == 80 || dstport == 443", hdr(6, 64, 1, 2, 1, 443, 100), true},
		{"!(dstport == 80)", hdr(6, 64, 1, 2, 1, 80, 100), false},
		{"proto == tcp && (dstport == 80 || dstport == 443) && ttl > 1",
			hdr(6, 64, 1, 2, 1, 443, 100), true},
		{"proto == tcp && (dstport == 80 || dstport == 443) && ttl > 1",
			hdr(6, 1, 1, 2, 1, 443, 100), false},
	}
	for _, c := range cases {
		f, err := CompileFilter(c.expr)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		if got := f(c.h); got != c.want {
			t.Errorf("%q on %+v = %v, want %v", c.expr, c.h, got, c.want)
		}
	}
}

func TestCompileFilterPrecedence(t *testing.T) {
	// && binds tighter than ||: a || b && c  ==  a || (b && c).
	f, err := CompileFilter("dstport == 80 || dstport == 443 && ttl > 100")
	if err != nil {
		t.Fatal(err)
	}
	if !f(hdr(6, 1, 1, 2, 1, 80, 100)) {
		t.Error("left disjunct should match regardless of ttl")
	}
	if f(hdr(6, 1, 1, 2, 1, 443, 100)) {
		t.Error("right conjunct requires ttl > 100")
	}
}

func TestCompileFilterErrors(t *testing.T) {
	bad := []string{
		"",
		"bogus == 1",
		"proto = tcp",
		"proto ==",
		"proto == nosuch",
		"dstport < ",
		"dstport < 1 &&",
		"(dstport < 1",
		"dstport < 1 extra",
		"srcip == 1.2.3",
		"srcip == 1.2.3.999",
		"proto & tcp",
		"ttl == 3 | ttl == 4",
		"dstport ? 80",
	}
	for _, expr := range bad {
		if _, err := CompileFilter(expr); err == nil {
			t.Errorf("%q accepted", expr)
		}
	}
}

func TestAnalyzerWithCompiledFilter(t *testing.T) {
	app := NewAnalyzer()
	f, err := CompileFilter("proto == udp && dstport == 53")
	if err != nil {
		t.Fatal(err)
	}
	app.Filter = f
	pipe := app.NewPipeline()
	dns := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoUDP, 64, 5353, 53, []byte("q"))
	web := netgen.Build([6]byte{}, [6]byte{}, 1, 2, netgen.ProtoTCP, 64, 5353, 80, []byte("q"))
	pipe.P.Process(dns)
	pipe.P.Process(web)
	ap := pipe.P.(*analyzerProcess)
	if ap.Logged != 1 || ap.Filtered != 1 {
		t.Errorf("logged=%d filtered=%d", ap.Logged, ap.Filtered)
	}
}
