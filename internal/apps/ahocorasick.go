package apps

import "sort"

// Automaton is an Aho-Corasick string-matching machine (Aho & Corasick,
// 1975): a goto function over a keyword trie, failure links computed by
// breadth-first search, and an output function listing the keywords that
// end at each state. It locates all occurrences of every keyword in a
// single pass over the text — the property that makes it the matcher of
// choice in intrusion-detection systems like Snort, and the algorithm of
// the paper's Aho-Corasick benchmark.
type Automaton struct {
	next     [][256]int32 // goto function, -1-free: dense transition table
	fail     []int32      // failure links
	out      [][]int32    // keyword indices ending at each state
	keywords []string
}

// NewAutomaton builds the pattern-matching machine for the keyword set.
// Empty keywords are ignored; duplicate keywords are collapsed to the first
// occurrence's index.
func NewAutomaton(keywords []string) *Automaton {
	a := &Automaton{keywords: keywords}
	a.next = append(a.next, [256]int32{})
	a.fail = append(a.fail, 0)
	a.out = append(a.out, nil)

	// Phase 1: trie construction (goto function).
	for ki, kw := range keywords {
		if kw == "" {
			continue
		}
		state := int32(0)
		for i := 0; i < len(kw); i++ {
			c := kw[i]
			if a.next[state][c] == 0 {
				a.next = append(a.next, [256]int32{})
				a.fail = append(a.fail, 0)
				a.out = append(a.out, nil)
				a.next[state][c] = int32(len(a.next) - 1)
			}
			state = a.next[state][c]
		}
		a.out[state] = append(a.out[state], int32(ki))
	}

	// Phase 2: failure links by BFS, and completion of the goto function
	// into a full transition table (next-move machine).
	queue := make([]int32, 0, len(a.next))
	for c := 0; c < 256; c++ {
		if s := a.next[0][c]; s != 0 {
			a.fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			s := a.next[r][c]
			if s == 0 {
				// Complete transition: inherit from the failure state.
				a.next[r][c] = a.next[a.fail[r]][c]
				continue
			}
			queue = append(queue, s)
			f := a.next[a.fail[r]][c]
			a.fail[s] = f
			a.out[s] = append(a.out[s], a.out[f]...)
		}
	}
	return a
}

// States returns the number of automaton states.
func (a *Automaton) States() int { return len(a.next) }

// Keywords returns the keyword set the automaton was built from.
func (a *Automaton) Keywords() []string { return a.keywords }

// Match is one keyword occurrence: keyword index and the position just past
// its last byte.
type Match struct {
	Keyword int
	End     int
}

// Search scans text once and calls visit for every keyword occurrence (if
// visit is non-nil). It returns the total number of occurrences.
func (a *Automaton) Search(text []byte, visit func(Match)) int {
	state := int32(0)
	count := 0
	for i := 0; i < len(text); i++ {
		state = a.next[state][text[i]]
		if outs := a.out[state]; len(outs) > 0 {
			count += len(outs)
			if visit != nil {
				for _, k := range outs {
					visit(Match{Keyword: int(k), End: i + 1})
				}
			}
		}
	}
	return count
}

// FindAll returns all matches in text, ordered by end position then keyword
// index.
func (a *Automaton) FindAll(text []byte) []Match {
	var ms []Match
	a.Search(text, func(m Match) { ms = append(ms, m) })
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Keyword < ms[j].Keyword
	})
	return ms
}
