package apps

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRouteTableBasics(t *testing.T) {
	rt := NewRouteTable()
	if rt.Lookup(0x0a000001) != 0 {
		t.Error("empty table should miss")
	}
	// 10.0.0.0/8 → 100; 10.1.0.0/16 → 200; 10.1.2.0/24 → 300.
	mustInsert(t, rt, 0x0a000000, 8, 100)
	mustInsert(t, rt, 0x0a010000, 16, 200)
	mustInsert(t, rt, 0x0a010200, 24, 300)
	if rt.Routes() != 3 {
		t.Errorf("routes = %d", rt.Routes())
	}
	cases := []struct {
		addr uint32
		want uint32
	}{
		{0x0a000001, 100}, // only /8 matches
		{0x0a010001, 200}, // /16 beats /8
		{0x0a010201, 300}, // /24 beats /16
		{0x0b000001, 0},   // nothing matches
	}
	for _, c := range cases {
		if got := rt.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%08x) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func mustInsert(t *testing.T, rt *RouteTable, addr uint32, length int, hop uint32) {
	t.Helper()
	if err := rt.Insert(addr, length, hop); err != nil {
		t.Fatal(err)
	}
}

func TestRouteTableDefaultAndHostRoutes(t *testing.T) {
	rt := NewRouteTable()
	mustInsert(t, rt, 0, 0, 7) // default route
	if got := rt.Lookup(0xffffffff); got != 7 {
		t.Errorf("default route = %d", got)
	}
	mustInsert(t, rt, 0xc0a80101, 32, 9) // host route
	if got := rt.Lookup(0xc0a80101); got != 9 {
		t.Errorf("host route = %d", got)
	}
	if got := rt.Lookup(0xc0a80102); got != 7 {
		t.Errorf("neighbour of host route = %d", got)
	}
}

func TestRouteTableOverwriteAndErrors(t *testing.T) {
	rt := NewRouteTable()
	mustInsert(t, rt, 0x0a000000, 8, 1)
	mustInsert(t, rt, 0x0a000000, 8, 2) // overwrite, not a new route
	if rt.Routes() != 1 {
		t.Errorf("routes = %d after overwrite", rt.Routes())
	}
	if got := rt.Lookup(0x0a000001); got != 2 {
		t.Errorf("overwritten hop = %d", got)
	}
	if err := rt.Insert(0, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if err := rt.Insert(0, 33, 1); err == nil {
		t.Error("length 33 accepted")
	}
	if err := rt.Insert(0, 8, 0); err == nil {
		t.Error("reserved next hop accepted")
	}
}

func TestRouteTableInsertionOrderIrrelevantProperty(t *testing.T) {
	// Longest-prefix-match must not depend on insertion order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type route struct {
			addr   uint32
			length int
			hop    uint32
		}
		n := 3 + rng.Intn(20)
		routes := make([]route, n)
		for i := range routes {
			routes[i] = route{addr: rng.Uint32(), length: rng.Intn(33), hop: uint32(1 + rng.Intn(1000))}
		}
		forward := NewRouteTable()
		backward := NewRouteTable()
		for _, r := range routes {
			if forward.Insert(r.addr, r.length, r.hop) != nil {
				return false
			}
		}
		for i := len(routes) - 1; i >= 0; i-- {
			r := routes[i]
			if backward.Insert(r.addr, r.length, r.hop) != nil {
				return false
			}
		}
		// Duplicate prefixes overwrite, so order matters only for them;
		// dedupe by keeping the last writer per (addr-masked, length).
		// To keep the property clean, compare only when all prefixes are
		// distinct.
		seen := map[[2]uint32]bool{}
		for _, r := range routes {
			key := [2]uint32{r.addr & prefixMaskFor(r.length), uint32(r.length)}
			if seen[key] {
				return true // skip draws with duplicate prefixes
			}
			seen[key] = true
		}
		for i := 0; i < 200; i++ {
			addr := rng.Uint32()
			if forward.Lookup(addr) != backward.Lookup(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func prefixMaskFor(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

func TestRouteTableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type route struct {
		addr   uint32
		length int
		hop    uint32
	}
	var routes []route
	rt := NewRouteTable()
	for i := 0; i < 200; i++ {
		r := route{addr: rng.Uint32(), length: rng.Intn(33), hop: uint32(1 + i)}
		r.addr &= prefixMaskFor(r.length)
		routes = append(routes, r)
		mustInsert(t, rt, r.addr, r.length, r.hop)
	}
	brute := func(addr uint32) uint32 {
		best, bestLen := uint32(0), -1
		for _, r := range routes {
			// >= so a duplicate prefix's later insertion wins, matching
			// the table's overwrite semantics.
			if addr&prefixMaskFor(r.length) == r.addr && r.length >= bestLen {
				best, bestLen = r.hop, r.length
			}
		}
		return best
	}
	for i := 0; i < 3000; i++ {
		addr := rng.Uint32()
		if got, want := rt.Lookup(addr), brute(addr); got != want {
			t.Fatalf("Lookup(%08x) = %d, brute force says %d", addr, got, want)
		}
	}
}

func TestPopulateRandomResolvesEverything(t *testing.T) {
	rt := NewRouteTable()
	if err := rt.PopulateRandom(5000, 3); err != nil {
		t.Fatal(err)
	}
	if rt.Routes() < 4000 { // some random prefixes collide
		t.Errorf("routes = %d", rt.Routes())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if rt.Lookup(rng.Uint32()) == 0 {
			t.Fatal("default route missing: lookup missed")
		}
	}
}

func TestIPFwdUsesLongestPrefixTable(t *testing.T) {
	app := NewIPFwd(IPFwdL1)
	if app.Table().Routes() < ipfwdL1Routes/2 {
		t.Errorf("small table has %d routes", app.Table().Routes())
	}
	appMem := NewIPFwd(IPFwdMem)
	if appMem.Table().Routes() <= app.Table().Routes() {
		t.Error("Mem variant should have a much larger table")
	}
	// Every destination forwards somewhere (default route).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if app.NextHop(rng.Uint32()) == 0 {
			t.Fatal("NextHop missed despite default route")
		}
	}
	// Shared table across instances of a variant.
	if NewIPFwd(IPFwdL1).Table() != app.Table() {
		t.Error("L1 tables not shared")
	}
}

func BenchmarkRouteTableLookup(b *testing.B) {
	rt := NewRouteTable()
	if err := rt.PopulateRandom(ipfwdMemRoutes, 1); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += rt.Lookup(addrs[i&4095])
	}
	_ = sink
}
