package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestStabilityScanOnThresholdStableData(t *testing.T) {
	// A GPD sample is threshold-stable: ξ̂ should hover near the true
	// shape at every candidate threshold, and the implied UPB near the
	// true endpoint.
	truth := GPD{Xi: -0.3, Sigma: 3} // endpoint 10
	rng := rand.New(rand.NewSource(8))
	xs := truth.Sample(rng, 20000)
	pts, err := StabilityScan(xs, ThresholdOptions{MaxExceedFraction: 0.2}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("points = %d", len(pts))
	}
	valid := 0
	for _, p := range pts {
		if p.FitErr != nil {
			continue
		}
		valid++
		// MLE sampling noise grows as exceedances shrink: allow
		// ~4 asymptotic standard errors, (1−ξ)/√m each.
		tol := 4 * (1 - truth.Xi) / math.Sqrt(float64(p.Exceedances))
		if math.Abs(p.Xi-truth.Xi) > tol {
			t.Errorf("u=%v (m=%d): ξ̂ = %v farther than %v from %v", p.U, p.Exceedances, p.Xi, tol, truth.Xi)
		}
		if p.UPBValid && p.Exceedances >= 100 && math.Abs(p.UPB-truth.RightEndpoint()) > 1.5 {
			t.Errorf("u=%v: UPB %v far from %v", p.U, p.UPB, truth.RightEndpoint())
		}
	}
	if valid < len(pts)*3/4 {
		t.Errorf("only %d of %d candidates fitted", valid, len(pts))
	}
	// Exceedance counts decrease along the scan (thresholds increase).
	for i := 1; i < len(pts); i++ {
		if pts[i].Exceedances >= pts[i-1].Exceedances {
			t.Fatal("scan not ordered by increasing threshold")
		}
	}
}

func TestStabilityScanErrors(t *testing.T) {
	if _, err := StabilityScan(make([]float64, 10), ThresholdOptions{}, 5); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	// Degenerate points parameter is repaired.
	rng := rand.New(rand.NewSource(9))
	xs := (GPD{Xi: -0.2, Sigma: 1}).Sample(rng, 2000)
	pts, err := StabilityScan(xs, ThresholdOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Error("no points")
	}
}
