package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitGPDPWMRecoversParameters(t *testing.T) {
	cases := []GPD{
		{Xi: -0.4, Sigma: 1},
		{Xi: -0.2, Sigma: 3},
		{Xi: 0.1, Sigma: 2},
	}
	for i, truth := range cases {
		rng := rand.New(rand.NewSource(int64(500 + i)))
		ys := truth.Sample(rng, 5000)
		fit, err := FitGPDPWM(ys)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(fit.GPD.Xi-truth.Xi) > 0.08 {
			t.Errorf("case %d: ξ̂ = %v, want ≈ %v", i, fit.GPD.Xi, truth.Xi)
		}
		if math.Abs(fit.GPD.Sigma-truth.Sigma)/truth.Sigma > 0.1 {
			t.Errorf("case %d: σ̂ = %v, want ≈ %v", i, fit.GPD.Sigma, truth.Sigma)
		}
		if fit.Method != "pwm" {
			t.Errorf("method = %q", fit.Method)
		}
	}
}

func TestFitGPDPWMSmallSamplesAndErrors(t *testing.T) {
	if _, err := FitGPDPWM([]float64{1, 2}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitGPDPWM([]float64{-1, 1, 2, 3, 4}); err == nil {
		t.Error("negative exceedance accepted")
	}
	// Support consistency: every observation inside the estimated support.
	rng := rand.New(rand.NewSource(1))
	truth := GPD{Xi: -0.45, Sigma: 1}
	ys := truth.Sample(rng, 60)
	fit, err := FitGPDPWM(ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range ys {
		if fit.GPD.Xi < 0 && y > fit.GPD.RightEndpoint() {
			t.Fatalf("observation %v outside fitted support %v", y, fit.GPD.RightEndpoint())
		}
	}
}

func TestPWMAgreesWithMLEProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := GPD{Xi: -(0.1 + 0.4*rng.Float64()), Sigma: 0.5 + 3*rng.Float64()}
		ys := truth.Sample(rng, 2000)
		mle, err1 := FitGPD(ys)
		pwm, err2 := FitGPDPWM(ys)
		if err1 != nil || err2 != nil {
			return false
		}
		// Both consistent estimators: they agree within loose tolerance.
		return math.Abs(mle.GPD.Xi-pwm.GPD.Xi) < 0.15 &&
			math.Abs(mle.GPD.Sigma-pwm.GPD.Sigma)/truth.Sigma < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKSTestAcceptsTrueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GPD{Xi: -0.3, Sigma: 2}
	ys := g.Sample(rng, 800)
	res := KSTest(ys, g)
	if res.N != 800 {
		t.Errorf("N = %d", res.N)
	}
	if res.D < 0 || res.D > 0.1 {
		t.Errorf("D = %v for the true model", res.D)
	}
	if res.PValue < 0.05 {
		t.Errorf("p = %v — true model rejected", res.PValue)
	}
}

func TestKSTestRejectsWrongModel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ys := (GPD{Xi: -0.3, Sigma: 2}).Sample(rng, 800)
	res := KSTest(ys, GPD{Xi: 0.8, Sigma: 0.3})
	if res.PValue > 1e-4 {
		t.Errorf("p = %v — grossly wrong model accepted", res.PValue)
	}
	if res.D < 0.1 {
		t.Errorf("D = %v", res.D)
	}
}

func TestKSTestEdgeCases(t *testing.T) {
	res := KSTest(nil, GPD{Xi: 0, Sigma: 1})
	if !math.IsNaN(res.D) || !math.IsNaN(res.PValue) {
		t.Errorf("empty sample: %+v", res)
	}
	if q := kolmogorovQ(0); q != 1 {
		t.Errorf("Q(0) = %v", q)
	}
	if q := kolmogorovQ(10); q != 0 {
		t.Errorf("Q(10) = %v", q)
	}
	// Known value: Q(1) ≈ 0.27.
	if q := kolmogorovQ(1); math.Abs(q-0.26999967) > 1e-4 {
		t.Errorf("Q(1) = %v", q)
	}
}

func TestBootstrapUPBBracketsTruth(t *testing.T) {
	truth := GPD{Xi: -0.3, Sigma: 1.5} // endpoint 5
	u := 20.0
	trueUPB := u + truth.RightEndpoint()
	rng := rand.New(rand.NewSource(21))
	ys := truth.Sample(rng, 1200)
	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := BootstrapUPB(u, ys, fit, BootstrapOptions{Replicates: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
		t.Errorf("interval %+v does not contain its point", iv)
	}
	if !(iv.Lo <= trueUPB && trueUPB <= iv.Hi) {
		t.Errorf("interval [%v, %v] misses the true endpoint %v", iv.Lo, iv.Hi, trueUPB)
	}
	// The best observation is a hard lower bound.
	maxObs := u
	for _, y := range ys {
		if u+y > maxObs {
			maxObs = u + y
		}
	}
	if iv.Lo < maxObs-1e-9 {
		t.Errorf("Lo %v below best observation %v", iv.Lo, maxObs)
	}
}

func TestBootstrapUPBWithPWMEstimator(t *testing.T) {
	truth := GPD{Xi: -0.25, Sigma: 1}
	rng := rand.New(rand.NewSource(22))
	ys := truth.Sample(rng, 800)
	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := BootstrapUPB(0, ys, fit, BootstrapOptions{Replicates: 200, Seed: 6, Estimator: FitGPDPWM})
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
		t.Errorf("interval %+v", iv)
	}
	if iv.Confidence != 0.95 {
		t.Errorf("confidence = %v", iv.Confidence)
	}
}

func TestBootstrapUPBErrors(t *testing.T) {
	fit := Fit{GPD: GPD{Xi: -0.3, Sigma: 1}}
	if _, err := BootstrapUPB(0, []float64{1, 2}, fit, BootstrapOptions{}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	unbounded := Fit{GPD: GPD{Xi: 0.2, Sigma: 1}}
	if _, err := BootstrapUPB(0, []float64{1, 2, 3, 4, 5, 6}, unbounded, BootstrapOptions{}); !errors.Is(err, ErrUnboundedTail) {
		t.Errorf("err = %v", err)
	}
}

func TestBootstrapAndWilksAgree(t *testing.T) {
	// The two interval constructions should be the same order of
	// magnitude on well-behaved data (the ablation's qualitative check).
	truth := GPD{Xi: -0.35, Sigma: 2}
	rng := rand.New(rand.NewSource(23))
	ys := truth.Sample(rng, 1500)
	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	wilks, err := UPBConfidenceInterval(0, ys, fit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	boot, err := BootstrapUPB(0, ys, fit, BootstrapOptions{Replicates: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(wilks.Hi, 1) || math.IsInf(boot.Hi, 1) {
		t.Skip("one construction unbounded on this draw")
	}
	wWidth, bWidth := wilks.Hi-wilks.Lo, boot.Hi-boot.Lo
	ratio := wWidth / bWidth
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("interval widths differ wildly: Wilks %v vs bootstrap %v", wWidth, bWidth)
	}
}
