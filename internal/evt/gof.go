package evt

import (
	"math"
	"sort"
)

// KSResult is the outcome of a Kolmogorov-Smirnov goodness-of-fit test of
// exceedances against a fitted GPD.
type KSResult struct {
	D      float64 // the KS statistic sup |F̂(y) − G(y)|
	PValue float64 // asymptotic p-value (approximate, see KSTest)
	N      int
}

// KSTest computes the Kolmogorov-Smirnov statistic of the exceedances ys
// against the GPD g and its asymptotic p-value.
//
// The p-value uses the standard Kolmogorov asymptotic with the
// small-sample correction λ = (√n + 0.12 + 0.11/√n)·D. Because g is
// normally *fitted to the same data*, the test is conservative in the
// Lilliefors sense: true p-values are smaller than reported, so a LOW
// reported p-value is strong evidence against the fit while a high one is
// merely encouraging. The paper relies on the quantile plot for the same
// judgement; this is its quantitative counterpart.
func KSTest(ys []float64, g GPD) KSResult {
	n := len(ys)
	if n == 0 {
		return KSResult{D: math.NaN(), PValue: math.NaN()}
	}
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	d := 0.0
	for i, y := range sorted {
		cdf := g.CDF(y)
		upper := float64(i+1)/float64(n) - cdf
		lower := cdf - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	return KSResult{D: d, PValue: kolmogorovQ(lambda), N: n}
}

// kolmogorovQ evaluates the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{k>=1} (−1)^{k−1} e^{−2k²λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if lambda > 4 {
		return 0 // below double-precision noise
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
