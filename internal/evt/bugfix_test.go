package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Regression tests for the three tail-pipeline bugfixes shipped with the
// streaming estimator: the headroom division guard, the typed
// non-finite-sample rejection, and the tie-run linearity diagnostic flag.

// TestHeadroomPercentGuards pins the guard semantics: a zero bound (or
// one whose gap overflows) reports ok=false instead of ±Inf/NaN, and a
// negative bound normalizes by magnitude so the gap keeps its sign on
// negated performance scales.
func TestHeadroomPercentGuards(t *testing.T) {
	cases := []struct {
		bound, best float64
		pct         float64
		ok          bool
	}{
		{100, 98, 2, true},
		{-1, -1.02, 2, true}, // negative scale: best 2% below the bound
		{-1, -0.9, -10, true},
		{0, 5, 0, false},
		{0, 0, 0, false},
		{-math.MaxFloat64, math.MaxFloat64, 0, false}, // gap overflows to −Inf
	}
	for _, c := range cases {
		pct, ok := HeadroomPercent(c.bound, c.best)
		if ok != c.ok {
			t.Errorf("HeadroomPercent(%v, %v) ok = %v, want %v", c.bound, c.best, ok, c.ok)
			continue
		}
		if ok && math.Abs(pct-c.pct) > 1e-9 {
			t.Errorf("HeadroomPercent(%v, %v) = %v, want %v", c.bound, c.best, pct, c.pct)
		}
		if math.IsNaN(pct) || math.IsInf(pct, 0) {
			t.Errorf("HeadroomPercent(%v, %v) leaked non-finite %v", c.bound, c.best, pct)
		}
	}
}

// TestAnalyzeNegativeScaleHeadroom: on a negative performance scale
// (latencies negated into higher-is-better, log-scores) the UPB point is
// negative; the report must carry a real finite headroom instead of the
// old guard's silent 0, and validateFinite must accept the report.
func TestAnalyzeNegativeScaleHeadroom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := GPD{Xi: -0.3, Sigma: 5}.Sample(rng, 3000)
	for i := range xs {
		xs[i] -= 200 // shift the whole scale negative; tail still bounded
	}
	rep, err := Analyze(xs, POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UPB.Point >= 0 {
		t.Fatalf("UPB.Point = %v, expected a negative-scale bound", rep.UPB.Point)
	}
	if rep.HeadroomPct == 0 {
		t.Fatal("HeadroomPct = 0 on a negative scale: division guard still swallowing the gap")
	}
	want, ok := HeadroomPercent(rep.UPB.Point, rep.BestObs)
	if !ok || rep.HeadroomPct != want {
		t.Fatalf("HeadroomPct = %v, want %v (ok=%v)", rep.HeadroomPct, want, ok)
	}
	if rep.HeadroomPct < 0 {
		t.Fatalf("HeadroomPct = %v: bound below best on a bounded-tail sample", rep.HeadroomPct)
	}
}

// TestPipelineRejectsNonFinite: a single NaN or ±Inf anywhere in the
// sample must produce the typed error at the pipeline entry — before
// sort.Float64s can place the NaN arbitrarily and make the threshold
// (and everything fitted downstream) nondeterministic.
func TestPipelineRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := GPD{Xi: -0.3, Sigma: 5}.Sample(rng, 1000)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		xs := append([]float64(nil), base...)
		xs[437] = bad
		if _, err := Analyze(xs, POTOptions{}); !errors.Is(err, ErrNonFiniteSample) {
			t.Errorf("Analyze with %v: err = %v, want ErrNonFiniteSample", bad, err)
		}
		if _, err := SelectThreshold(xs, ThresholdOptions{}); !errors.Is(err, ErrNonFiniteSample) {
			t.Errorf("SelectThreshold with %v: err = %v, want ErrNonFiniteSample", bad, err)
		}
	}
	// A clean sample still goes through.
	if _, err := SelectThreshold(base, ThresholdOptions{}); err != nil {
		t.Fatalf("finite sample rejected: %v", err)
	}
}

// TestThresholdLinearityOKOnSnapDown: when a tie-run snap-down leaves
// fewer than two mean-excess points at or above the threshold, the
// linearity fit is unavailable. The report must say so via LinearityOK
// instead of presenting a zero-valued LinearFit as a measured, perfectly
// non-linear tail.
func TestThresholdLinearityOKOnSnapDown(t *testing.T) {
	// 380 distinct body values strictly below a 100-copy tie run at the
	// maximum: every scan candidate lands inside the run, snaps down to
	// the body maximum, and the only mean-excess point at or above it is
	// the body maximum itself — one point, no line.
	const tied = 100.0
	var xs []float64
	for i := 1; i <= 380; i++ {
		xs = append(xs, tied*float64(i)/400)
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, tied)
	}

	thr, err := SelectThreshold(xs, ThresholdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(thr.Exceedances) != 100 {
		t.Fatalf("snap-down kept %d exceedances, want the whole 100-copy tie run", len(thr.Exceedances))
	}
	if thr.LinearityOK {
		t.Fatalf("LinearityOK = true with a single mean-excess point above u=%v", thr.U)
	}
	if thr.Linearity != (LinearFit{}) {
		t.Fatalf("unavailable linearity carries values: %+v", thr.Linearity)
	}

	// Control: a smooth sample fits a real line and sets the flag.
	rng := rand.New(rand.NewSource(29))
	smooth, err := SelectThreshold(GPD{Xi: -0.3, Sigma: 5}.Sample(rng, 2000), ThresholdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !smooth.LinearityOK || smooth.Linearity.R2 <= 0 {
		t.Fatalf("smooth sample: LinearityOK=%v Linearity=%+v", smooth.LinearityOK, smooth.Linearity)
	}

	// RuleLinearityScan cannot score unfittable candidates; on this
	// sample every candidate is unfittable and the scan must still
	// return the snapped threshold rather than fail or pretend R²=0.
	scan, err := SelectThreshold(xs, ThresholdOptions{Rule: RuleLinearityScan})
	if err != nil {
		t.Fatal(err)
	}
	if scan.LinearityOK {
		t.Fatalf("linearity scan scored an unfittable candidate: %+v", scan.Linearity)
	}
}
