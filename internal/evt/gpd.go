// Package evt implements the Extreme Value Theory machinery of the paper:
// the Generalized Pareto Distribution (GPD), the Peak-Over-Threshold (POT)
// method with sample mean-excess threshold diagnostics, maximum-likelihood
// parameter estimation (via a Nelder-Mead search, the stdlib equivalent of
// the Matlab fminsearch the authors used), the Upper Performance Bound (UPB)
// point estimate u − σ/ξ, and its profile-likelihood confidence interval via
// Wilks' theorem (paper §3.3).
package evt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// GPD is a Generalized Pareto Distribution over exceedances y >= 0 with
// shape Xi (ξ) and scale Sigma (σ):
//
//	G(y) = 1 − (1 + ξ·y/σ)^(−1/ξ)   for ξ ≠ 0
//	G(y) = 1 − e^(−y/σ)             for ξ = 0
//
// For ξ < 0 the support is the finite interval [0, −σ/ξ]; that finite right
// endpoint is what makes the GPD the right model for estimating the optimal
// (best possible) performance of a finite physical system.
type GPD struct {
	Xi    float64 // shape ξ
	Sigma float64 // scale σ > 0
}

// ErrInvalidScale reports a non-positive σ.
var ErrInvalidScale = errors.New("evt: GPD scale must be positive")

// Validate checks that the parameters define a proper distribution.
func (g GPD) Validate() error {
	if !(g.Sigma > 0) || math.IsInf(g.Sigma, 0) || math.IsNaN(g.Xi) {
		return ErrInvalidScale
	}
	return nil
}

// RightEndpoint returns the upper bound of the support: −σ/ξ for ξ < 0 and
// +Inf otherwise.
func (g GPD) RightEndpoint() float64 {
	if g.Xi < 0 {
		return -g.Sigma / g.Xi
	}
	return math.Inf(1)
}

// CDF returns G(y).
func (g GPD) CDF(y float64) float64 {
	if y <= 0 {
		return 0
	}
	if g.Xi == 0 {
		return 1 - math.Exp(-y/g.Sigma)
	}
	t := 1 + g.Xi*y/g.Sigma
	if t <= 0 {
		// Beyond the right endpoint for ξ<0.
		if g.Xi < 0 {
			return 1
		}
		return 0
	}
	return 1 - math.Pow(t, -1/g.Xi)
}

// PDF returns the density g(y) = (1/σ)(1 + ξy/σ)^(−1/ξ−1).
func (g GPD) PDF(y float64) float64 {
	if y < 0 {
		return 0
	}
	if g.Xi == 0 {
		return math.Exp(-y/g.Sigma) / g.Sigma
	}
	t := 1 + g.Xi*y/g.Sigma
	if t <= 0 {
		return 0
	}
	return math.Pow(t, -1/g.Xi-1) / g.Sigma
}

// LogPDF returns log g(y), or −Inf outside the support.
func (g GPD) LogPDF(y float64) float64 {
	if y < 0 {
		return math.Inf(-1)
	}
	if g.Xi == 0 {
		return -y/g.Sigma - math.Log(g.Sigma)
	}
	t := 1 + g.Xi*y/g.Sigma
	if t <= 0 {
		return math.Inf(-1)
	}
	return -math.Log(g.Sigma) - (1/g.Xi+1)*math.Log(t)
}

// Quantile returns the p-quantile G⁻¹(p) for p in [0, 1).
func (g GPD) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return g.RightEndpoint()
	}
	if g.Xi == 0 {
		return -g.Sigma * math.Log(1-p)
	}
	return g.Sigma / g.Xi * (math.Pow(1-p, -g.Xi) - 1)
}

// Mean returns the expectation σ/(1−ξ), defined for ξ < 1.
func (g GPD) Mean() float64 {
	if g.Xi >= 1 {
		return math.Inf(1)
	}
	return g.Sigma / (1 - g.Xi)
}

// Variance returns σ²/((1−ξ)²(1−2ξ)), defined for ξ < 1/2.
func (g GPD) Variance() float64 {
	if g.Xi >= 0.5 {
		return math.Inf(1)
	}
	d := 1 - g.Xi
	return g.Sigma * g.Sigma / (d * d * (1 - 2*g.Xi))
}

// Rand draws a variate by inverse-transform sampling.
func (g GPD) Rand(rng *rand.Rand) float64 {
	return g.Quantile(rng.Float64())
}

// Sample draws n iid variates.
func (g GPD) Sample(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Rand(rng)
	}
	return out
}

// LogLikelihood returns Σ log g(y_i) for the exceedances ys, −Inf if any
// observation falls outside the support.
func (g GPD) LogLikelihood(ys []float64) float64 {
	var sum float64
	for _, y := range ys {
		lp := g.LogPDF(y)
		if math.IsInf(lp, -1) {
			return math.Inf(-1)
		}
		sum += lp
	}
	return sum
}

// String implements fmt.Stringer.
func (g GPD) String() string {
	return fmt.Sprintf("GPD(ξ=%.4g, σ=%.4g)", g.Xi, g.Sigma)
}
