package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMomentsEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := GPD{Xi: -0.25, Sigma: 2}
	ys := truth.Sample(rng, 50000)
	g, err := MomentsEstimate(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Xi-truth.Xi) > 0.05 {
		t.Errorf("moments ξ̂ = %v, want ≈ %v", g.Xi, truth.Xi)
	}
	if math.Abs(g.Sigma-truth.Sigma)/truth.Sigma > 0.05 {
		t.Errorf("moments σ̂ = %v, want ≈ %v", g.Sigma, truth.Sigma)
	}
	// Every observation must be inside the estimated support.
	for _, y := range ys {
		if y > g.RightEndpoint() {
			t.Fatalf("moments estimate excludes its own data: y=%v endpoint=%v", y, g.RightEndpoint())
		}
	}
}

func TestMomentsEstimateErrors(t *testing.T) {
	if _, err := MomentsEstimate([]float64{1}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	if _, err := MomentsEstimate([]float64{0, 0, 0}); err == nil {
		t.Error("degenerate sample should error")
	}
	if _, err := MomentsEstimate([]float64{-1, -2, -3}); err == nil {
		t.Error("negative exceedances should error")
	}
}

func TestFitGPDRecoversParameters(t *testing.T) {
	cases := []GPD{
		{Xi: -0.4, Sigma: 1},
		{Xi: -0.2, Sigma: 3},
		{Xi: -0.1, Sigma: 0.5},
		{Xi: 0.2, Sigma: 2},
	}
	for i, truth := range cases {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		ys := truth.Sample(rng, 4000)
		fit, err := FitGPD(ys)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(fit.GPD.Xi-truth.Xi) > 0.08 {
			t.Errorf("case %d: ξ̂ = %v, want ≈ %v", i, fit.GPD.Xi, truth.Xi)
		}
		if math.Abs(fit.GPD.Sigma-truth.Sigma)/truth.Sigma > 0.1 {
			t.Errorf("case %d: σ̂ = %v, want ≈ %v", i, fit.GPD.Sigma, truth.Sigma)
		}
		if fit.Method != "mle" || fit.Exceedances != len(ys) {
			t.Errorf("case %d: metadata %+v", i, fit)
		}
		// MLE should (weakly) beat the moments start on its own objective.
		mom, err := FitGPDMoments(ys)
		if err != nil {
			t.Fatal(err)
		}
		if fit.LogLikelihood < mom.LogLikelihood-1e-6 {
			t.Errorf("case %d: MLE logL %v below moments %v", i, fit.LogLikelihood, mom.LogLikelihood)
		}
	}
}

func TestFitGPDTooSmall(t *testing.T) {
	if _, err := FitGPD([]float64{1, 2, 3}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
}

func TestFitGPDLikelihoodIsFiniteOnData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := GPD{Xi: -0.35, Sigma: 1.7}
	ys := truth.Sample(rng, 500)
	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(fit.LogLikelihood, 0) || math.IsNaN(fit.LogLikelihood) {
		t.Errorf("logL = %v", fit.LogLikelihood)
	}
	// Fitted endpoint must cover the sample maximum.
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	if fit.GPD.Xi < 0 && fit.GPD.RightEndpoint() < maxY {
		t.Errorf("fitted endpoint %v below sample max %v", fit.GPD.RightEndpoint(), maxY)
	}
}
