package evt

import (
	"errors"
	"sort"
)

// FitGPDPWM estimates GPD parameters by probability-weighted moments
// (Hosking & Wallis 1987, the paper's reference [30]): with b₀ the sample
// mean and b₁ the first probability-weighted moment
//
//	b₁ = (1/n) Σ_{i=1..n} ((n−i)/(n−1)) · y_(i)   (y_(i) ascending)
//
// the estimators are
//
//	ξ̂ = 2 − b₀/(b₀ − 2 b₁),   σ̂ = 2 b₀ b₁/(b₀ − 2 b₁).
//
// PWM is robust for small exceedance sets and shapes ξ < 1/2 — exactly the
// regime of bounded-performance tails — and serves both as an alternative
// production estimator and as the third arm of the estimator ablation.
func FitGPDPWM(ys []float64) (Fit, error) {
	n := len(ys)
	if n < 5 {
		return Fit{}, ErrSampleTooSmall
	}
	if distinctValues(ys) < 3 {
		return Fit{}, ErrDegenerateTail
	}
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return Fit{}, errors.New("evt: negative exceedance")
	}

	var b0, b1 float64
	for i, y := range sorted {
		b0 += y
		b1 += y * float64(n-1-i) / float64(n-1)
	}
	b0 /= float64(n)
	b1 /= float64(n)

	den := b0 - 2*b1
	if den <= 0 {
		return Fit{}, errors.New("evt: PWM estimator undefined (b0 <= 2*b1)")
	}
	g := GPD{
		Xi:    2 - b0/den,
		Sigma: 2 * b0 * b1 / den,
	}
	if err := g.Validate(); err != nil {
		return Fit{}, err
	}
	// Keep the data inside the estimated support, as MomentsEstimate does:
	// an endpoint below the sample maximum would make the fit inconsistent
	// with its own input.
	if g.Xi < 0 {
		if maxY := sorted[n-1]; g.RightEndpoint() < maxY {
			g.Sigma = -g.Xi * maxY * 1.0001
		}
	}
	return Fit{GPD: g, LogLikelihood: g.LogLikelihood(ys), Exceedances: n, Method: "pwm"}, nil
}
