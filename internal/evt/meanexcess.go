package evt

import (
	"errors"
	"sort"
)

// ErrSampleTooSmall reports too few observations for a POT analysis.
var ErrSampleTooSmall = errors.New("evt: sample too small")

// MeanExcessPoint is one point (u, e_n(u)) of the sample mean excess plot
// together with the number of observations exceeding u.
type MeanExcessPoint struct {
	U       float64 // candidate threshold
	E       float64 // sample mean excess e_n(u)
	Exceeds int     // number of observations strictly above u
}

// MeanExcess computes the sample mean excess function of xs at every
// distinct order statistic except the maximum (above which there are no
// exceedances):
//
//	e_n(u) = Σ_{x_i > u} (x_i − u) / #{x_i > u}
//
// This is the graphical threshold-selection tool of §3.3.2 Step 2 (Fig. 6b):
// a GPD with ξ < 0 has a linear, downward-sloping mean excess function, so
// the threshold should be chosen where the right portion of the plot is
// roughly linear.
func MeanExcess(xs []float64) ([]MeanExcessPoint, error) {
	if len(xs) < 2 {
		return nil, ErrSampleTooSmall
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)

	// Suffix sums let us evaluate every threshold in O(n).
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i]
	}

	points := make([]MeanExcessPoint, 0, n-1)
	for i := 0; i < n-1; i++ {
		u := sorted[i]
		if i > 0 && u == sorted[i-1] {
			continue // duplicate threshold value
		}
		// Observations strictly above u start at the first index j with
		// sorted[j] > u.
		j := sort.SearchFloat64s(sorted, u)
		for j < n && sorted[j] == u {
			j++
		}
		m := n - j
		if m == 0 {
			continue
		}
		points = append(points, MeanExcessPoint{
			U:       u,
			E:       (suffix[j] - float64(m)*u) / float64(m),
			Exceeds: m,
		})
	}
	if len(points) == 0 {
		return nil, ErrSampleTooSmall
	}
	return points, nil
}

// LinearFit holds an ordinary-least-squares line fit with its coefficient of
// determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits y = a + b·x by least squares and reports R². It is used to
// quantify how linear the right portion of a mean excess plot is — the
// paper's qualitative "roughly linear" check made explicit.
func FitLine(xs, ys []float64) (LinearFit, error) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{}, ErrSampleTooSmall
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("evt: degenerate x values in line fit")
	}
	b := sxy / sxx
	fit := LinearFit{Slope: b, Intercept: my - b*mx}
	if syy == 0 {
		fit.R2 = 1 // constant y is fit exactly by a horizontal line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// MeanExcessLinearity fits a line to the mean excess points whose thresholds
// lie at or above u and returns the fit. At least two points are required.
func MeanExcessLinearity(points []MeanExcessPoint, u float64) (LinearFit, error) {
	var xs, ys []float64
	for _, p := range points {
		if p.U >= u {
			xs = append(xs, p.U)
			ys = append(ys, p.E)
		}
	}
	return FitLine(xs, ys)
}
