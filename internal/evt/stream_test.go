package evt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// The differential suite behind the streaming estimator's central claim:
// at every refit boundary, StreamEstimator.Refit is bitwise-equal to a
// from-scratch Analyze on the same observations in commit order — for
// any commit order, any interleaving of refits, and across a
// snapshot/JSON/restore cycle.

// reportBitsEqual walks two Reports field by field, comparing every
// float64 by its IEEE-754 bits. Plain equality would hide exactly the
// drift this suite exists to catch (and would misjudge ±Inf/−0 edges).
func reportBitsEqual(t *testing.T, label string, a, b Report) {
	t.Helper()
	var walk func(path string, va, vb reflect.Value)
	walk = func(path string, va, vb reflect.Value) {
		switch va.Kind() {
		case reflect.Float64:
			if math.Float64bits(va.Float()) != math.Float64bits(vb.Float()) {
				t.Errorf("%s: %s differs bitwise: %v (%016x) vs %v (%016x)",
					label, path, va.Float(), math.Float64bits(va.Float()), vb.Float(), math.Float64bits(vb.Float()))
			}
		case reflect.Slice:
			if va.Len() != vb.Len() {
				t.Errorf("%s: %s length %d vs %d", label, path, va.Len(), vb.Len())
				return
			}
			for i := 0; i < va.Len(); i++ {
				walk(fmt.Sprintf("%s[%d]", path, i), va.Index(i), vb.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < va.NumField(); i++ {
				walk(path+"."+va.Type().Field(i).Name, va.Field(i), vb.Field(i))
			}
		default:
			if !va.CanInterface() {
				return
			}
			if !reflect.DeepEqual(va.Interface(), vb.Interface()) {
				t.Errorf("%s: %s differs: %v vs %v", label, path, va.Interface(), vb.Interface())
			}
		}
	}
	walk("Report", reflect.ValueOf(a), reflect.ValueOf(b))
}

// streamSamples are the suite's population shapes: a clean bounded GPD
// tail, a uniform body, and a coarsely quantized (ties-heavy) sample
// that exercises the tie-run snap-down inside the maintained order
// statistics.
func streamSamples(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	gpd := GPD{Xi: -0.3, Sigma: 5}.Sample(rng, n)
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 100
	}
	quantized := make([]float64, n)
	for i := range quantized {
		quantized[i] = math.Round(rng.Float64()*200) / 2
	}
	return map[string][]float64{"gpd": gpd, "uniform": uniform, "quantized": quantized}
}

func streamTestOpts() POTOptions {
	return POTOptions{Threshold: ThresholdOptions{MaxExceedFraction: 0.1}}
}

// TestStreamRefitMatchesAnalyzeBitwise feeds each population in three
// commit orders, refitting at several boundaries; every refit must agree
// bitwise with Analyze on the commit-order prefix (or fail with the
// identical error).
func TestStreamRefitMatchesAnalyzeBitwise(t *testing.T) {
	const n = 3000
	opts := streamTestOpts()
	for name, sample := range streamSamples(n, 77) {
		orders := map[string][]float64{"natural": sample}
		shuffled := append([]float64(nil), sample...)
		rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		orders["shuffled"] = shuffled
		descending := append([]float64(nil), sample...)
		sort.Sort(sort.Reverse(sort.Float64Slice(descending)))
		orders["descending"] = descending

		for orderName, xs := range orders {
			t.Run(name+"/"+orderName, func(t *testing.T) {
				s := NewStreamEstimator(StreamOptions{POT: opts})
				checkpoints := map[int]bool{300: true, 500: true, 1000: true, 2200: true, n: true}
				for i, x := range xs {
					if err := s.Observe(x); err != nil {
						t.Fatal(err)
					}
					if !checkpoints[i+1] {
						continue
					}
					streamRep, streamErr := s.Refit()
					batchRep, batchErr := Analyze(xs[:i+1], opts)
					if fmt.Sprint(streamErr) != fmt.Sprint(batchErr) {
						t.Fatalf("n=%d: stream err %v, batch err %v", i+1, streamErr, batchErr)
					}
					if streamErr == nil {
						reportBitsEqual(t, fmt.Sprintf("n=%d", i+1), streamRep, batchRep)
					}
				}
			})
		}
	}
}

// TestStreamMatchesAnalyzeRandomized fuzzes sizes, seeds and shapes with
// a single final refit each.
func TestStreamMatchesAnalyzeRandomized(t *testing.T) {
	opts := streamTestOpts()
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		n := 450 + rng.Intn(1200)
		var xs []float64
		switch trial % 3 {
		case 0:
			xs = GPD{Xi: -0.2 - rng.Float64()/2, Sigma: 1 + rng.Float64()*9}.Sample(rng, n)
		case 1:
			for i := 0; i < n; i++ {
				xs = append(xs, rng.Float64()*1000)
			}
		default:
			for i := 0; i < n; i++ {
				xs = append(xs, math.Round(rng.Float64()*100))
			}
		}
		s := NewStreamEstimator(StreamOptions{POT: opts})
		if err := s.ObserveAll(xs); err != nil {
			t.Fatal(err)
		}
		streamRep, streamErr := s.Refit()
		batchRep, batchErr := Analyze(xs, opts)
		if fmt.Sprint(streamErr) != fmt.Sprint(batchErr) {
			t.Fatalf("trial %d (n=%d): stream err %v, batch err %v", trial, n, streamErr, batchErr)
		}
		if streamErr == nil {
			reportBitsEqual(t, fmt.Sprintf("trial %d (n=%d)", trial, n), streamRep, batchRep)
		}
	}
}

// TestStreamSnapshotRestoreContinues snapshots mid-stream, round-trips
// the state through JSON, and requires the restored estimator to track
// the original — and the batch analysis — bitwise from there on.
func TestStreamSnapshotRestoreContinues(t *testing.T) {
	opts := streamTestOpts()
	rng := rand.New(rand.NewSource(13))
	xs := GPD{Xi: -0.35, Sigma: 3}.Sample(rng, 2500)
	const cut = 1100

	s := NewStreamEstimator(StreamOptions{POT: opts})
	if err := s.ObserveAll(xs[:cut]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refit(); err != nil {
		t.Fatal(err)
	}

	st := s.Snapshot()
	if got := CommitOrderHash(xs[:cut]); st.Hash != got {
		t.Fatalf("snapshot hash %s, commit-order hash %s", st.Hash, got)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded StreamState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(decoded, StreamOptions{POT: opts})
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != cut || restored.HashHex() != st.Hash {
		t.Fatalf("restored n=%d hash=%s, want n=%d hash=%s", restored.N(), restored.HashHex(), cut, st.Hash)
	}
	if !reflect.DeepEqual(restored.Live(), s.Live()) {
		t.Fatalf("restored live %+v differs from original %+v", restored.Live(), s.Live())
	}

	for _, est := range []*StreamEstimator{s, restored} {
		if err := est.ObserveAll(xs[cut:]); err != nil {
			t.Fatal(err)
		}
	}
	origRep, origErr := s.Refit()
	restRep, restErr := restored.Refit()
	batchRep, batchErr := Analyze(xs, opts)
	if origErr != nil || restErr != nil || batchErr != nil {
		t.Fatalf("refit errors: orig %v, restored %v, batch %v", origErr, restErr, batchErr)
	}
	reportBitsEqual(t, "restored-vs-original", restRep, origRep)
	reportBitsEqual(t, "restored-vs-batch", restRep, batchRep)
	if s.HashHex() != restored.HashHex() {
		t.Fatalf("hashes diverged: %s vs %s", s.HashHex(), restored.HashHex())
	}
}

// TestStreamStateUnboundedHiJSON: +Inf cannot cross encoding/json, so an
// unbounded upper bound must round-trip through the HiUnbounded flag.
func TestStreamStateUnboundedHiJSON(t *testing.T) {
	s := NewStreamEstimator(StreamOptions{})
	if err := s.ObserveAll([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	s.live.Fitted = true
	s.live.Hi = math.Inf(1)
	st := s.Snapshot()
	if !st.HiUnbounded || st.UPBHi != 0 {
		t.Fatalf("snapshot of Hi=+Inf: %+v", st)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("state with unbounded Hi does not survive JSON: %v", err)
	}
	var decoded StreamState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(decoded, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hi := restored.Live().Hi; !math.IsInf(hi, 1) {
		t.Fatalf("restored Hi = %v, want +Inf", hi)
	}
}

// TestStreamObserveRejectsNonFinite: NaN/±Inf must be refused with the
// typed error before touching any state.
func TestStreamObserveRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := NewStreamEstimator(StreamOptions{})
		if err := s.Observe(1.5); err != nil {
			t.Fatal(err)
		}
		before := s.HashHex()
		if err := s.Observe(bad); !errors.Is(err, ErrNonFiniteSample) {
			t.Errorf("Observe(%v) = %v, want ErrNonFiniteSample", bad, err)
		}
		if s.N() != 1 || s.HashHex() != before {
			t.Errorf("Observe(%v) mutated state: n=%d", bad, s.N())
		}
	}
}

// TestStreamAutoRefitSchedule: the doubling schedule fires at 64, 128,
// 256, 512, ...; refits whose sample is still too small fail silently
// (the stream keeps observing) and do not count, while the schedule
// still advances.
func TestStreamAutoRefitSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewStreamEstimator(StreamOptions{
		POT:       POTOptions{Threshold: ThresholdOptions{MaxExceedFraction: 0.3}},
		AutoRefit: true,
	})
	if err := s.ObserveAll(GPD{Xi: -0.3, Sigma: 5}.Sample(rng, 600)); err != nil {
		t.Fatal(err)
	}
	l := s.Live()
	// n=64 allows at most 19 exceedances at fraction 0.3 (< the minimum
	// 20): that refit fails and is not counted; 128, 256 and 512 succeed.
	if l.RefitCount != 3 {
		t.Errorf("RefitCount = %d, want 3 (refits at 128, 256, 512; 64 too small)", l.RefitCount)
	}
	if l.LastRefitN != 512 {
		t.Errorf("LastRefitN = %d, want 512", l.LastRefitN)
	}
	if l.NextRefitN != 1024 {
		t.Errorf("NextRefitN = %d, want 1024", l.NextRefitN)
	}
	if !l.Fitted || l.UPB <= l.Best {
		t.Errorf("live summary after auto refits: %+v", l)
	}
}

// TestStreamLiveTailCount: between refits the exceedance count updates
// per observation against the last threshold; a refit re-bases it on the
// new threshold.
func TestStreamLiveTailCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := GPD{Xi: -0.3, Sigma: 5}.Sample(rng, 1000)
	s := NewStreamEstimator(StreamOptions{POT: streamTestOpts()})
	if err := s.ObserveAll(xs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Refit()
	if err != nil {
		t.Fatal(err)
	}
	l := s.Live()
	if l.TailCount != len(rep.Threshold.Exceedances) {
		t.Fatalf("TailCount after refit = %d, want %d", l.TailCount, len(rep.Threshold.Exceedances))
	}
	u := rep.Threshold.U
	above, below := u+1, u-1
	for _, x := range []float64{above, below, above} {
		if err := s.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	l2 := s.Live()
	if l2.TailCount != l.TailCount+2 {
		t.Errorf("TailCount = %d after 2 exceedances, want %d", l2.TailCount, l.TailCount+2)
	}
	if want := float64(l2.TailCount) / float64(l2.N); l2.TailMass != want {
		t.Errorf("TailMass = %v, want %v", l2.TailMass, want)
	}
	if l2.Best < above {
		t.Errorf("Best = %v, want >= %v", l2.Best, above)
	}
}

// TestOrderStatsMatchesSort: the chunked structure must materialize to
// exactly sort.Float64s of its inputs across split boundaries, and keep
// every chunk within the split bound.
func TestOrderStatsMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var o orderStats
	var all []float64
	for i := 0; i < 5000; i++ {
		x := math.Round(rng.Float64()*1000) / 4 // ties included
		o.insert(x)
		all = append(all, x)
	}
	want := append([]float64(nil), all...)
	sort.Float64s(want)
	got := o.materialize(len(all))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("materialized order statistics differ from sort.Float64s")
	}
	for i, c := range o.chunks {
		if len(c) == 0 || len(c) > streamChunkMax {
			t.Fatalf("chunk %d has %d elements", i, len(c))
		}
	}
}

// TestRestoreStreamValidates: corrupt checkpoints must be refused.
func TestRestoreStreamValidates(t *testing.T) {
	good := StreamState{N: 3, Hash: CommitOrderHash([]float64{3, 1, 2}), Sorted: []float64{1, 2, 3}, Best: 3}
	if _, err := RestoreStream(good, StreamOptions{}); err != nil {
		t.Fatalf("valid state refused: %v", err)
	}
	cases := map[string]StreamState{
		"count-mismatch": {N: 4, Hash: good.Hash, Sorted: []float64{1, 2, 3}},
		"unsorted":       {N: 3, Hash: good.Hash, Sorted: []float64{2, 1, 3}},
		"non-finite":     {N: 3, Hash: good.Hash, Sorted: []float64{1, 2, math.Inf(1)}},
		"bad-hash":       {N: 3, Hash: "not-hex", Sorted: []float64{1, 2, 3}},
	}
	for name, st := range cases {
		if _, err := RestoreStream(st, StreamOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCommitOrderHashOrderSensitive: the hash identifies the commit
// order, not just the multiset, and matches the estimator's running
// value.
func TestCommitOrderHashOrderSensitive(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if CommitOrderHash(xs) == CommitOrderHash([]float64{1, 2, 3, 4, 5}) {
		t.Fatal("hash ignores commit order")
	}
	s := NewStreamEstimator(StreamOptions{})
	if err := s.ObserveAll(xs); err != nil {
		t.Fatal(err)
	}
	if s.HashHex() != CommitOrderHash(xs) {
		t.Fatalf("estimator hash %s, CommitOrderHash %s", s.HashHex(), CommitOrderHash(xs))
	}
	if NewStreamEstimator(StreamOptions{}).HashHex() != CommitOrderHash(nil) {
		t.Fatal("empty-stream hash differs from CommitOrderHash(nil)")
	}
}
