package evt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNonFiniteSample reports a NaN or ±Inf observation handed to the POT
// pipeline. sort.Float64s leaves NaN placement unspecified, so a single
// NaN would make threshold selection — and everything fitted downstream —
// nondeterministic; rejecting at the entry turns that silent
// nondeterminism into a typed error. The campaign journal already refuses
// non-finite performances, but calibrate populations and direct evt
// callers do not go through the journal.
var ErrNonFiniteSample = errors.New("evt: sample contains a non-finite observation")

// checkFiniteSample is the pipeline-entry guard behind ErrNonFiniteSample.
func checkFiniteSample(xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: observation %d is %v", ErrNonFiniteSample, i, x)
		}
	}
	return nil
}

// ThresholdRule selects how the POT threshold u is chosen.
type ThresholdRule int

const (
	// RuleAuto (the default) scans candidate thresholds between
	// MinExceedances and MaxExceedFraction·n, fits a GPD at each, and
	// keeps the threshold whose fit has the straightest quantile plot,
	// preferring fits with ξ < 0 (the finite-endpoint regime the method
	// needs) and, among near-ties, more exceedances (tighter confidence
	// intervals, §5.2). This automates the paper's §3.3.2 Step 2 judgment
	// — "mean excess plot roughly linear", "quantile plot close to a
	// straight line" — under the 5% exceedance cap.
	RuleAuto ThresholdRule = iota
	// RuleMaxFraction takes u so that exactly MaxExceedFraction of the
	// sample exceeds it — the paper's cap applied directly, with no scan.
	RuleMaxFraction
	// RuleLinearityScan scans the same candidates as RuleAuto but scores
	// them only by the mean-excess-plot linearity (R²), without fitting.
	// Cheaper, used as an ablation baseline.
	RuleLinearityScan
)

// ThresholdOptions tunes threshold selection. The zero value selects the
// paper defaults: fit-scored scan, 5% maximum exceedance fraction, at least
// 20 exceedances.
type ThresholdOptions struct {
	MaxExceedFraction float64       // default 0.05
	MinExceedances    int           // default 20
	Rule              ThresholdRule // default RuleAuto
}

func (o ThresholdOptions) withDefaults() ThresholdOptions {
	if o.MaxExceedFraction <= 0 || o.MaxExceedFraction >= 1 {
		o.MaxExceedFraction = 0.05
	}
	if o.MinExceedances <= 0 {
		o.MinExceedances = 20
	}
	return o
}

// Threshold is a selected POT threshold with its exceedances and
// diagnostics of the tail above it.
type Threshold struct {
	U           float64   // the threshold
	Exceedances []float64 // y_i = x_i − u for x_i > u, ascending
	Linearity   LinearFit // mean-excess line fit over points ≥ u
	// LinearityOK reports that Linearity holds a real mean-excess line
	// fit. False means the fit was unavailable at this threshold — e.g. a
	// tie-run snap-down left fewer than two distinct mean-excess points
	// at or above u — and the zero-valued Linearity is "no diagnostic",
	// not evidence of a perfectly non-linear tail.
	LinearityOK bool
	QQCorr      float64 // quantile-plot straightness of the GPD fit (RuleAuto)
}

// SelectThreshold chooses a POT threshold for the raw sample xs.
//
// Candidate thresholds are order statistics; the candidate keeping m
// observations above it is u = x_(n−m). The number of exceedances is capped
// at MaxExceedFraction·n to avoid biasing the GPD toward the body of the
// distribution, and floored at MinExceedances so the fit has enough data.
func SelectThreshold(xs []float64, opts ThresholdOptions) (Threshold, error) {
	if err := checkFiniteSample(xs); err != nil {
		return Threshold{}, err
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return selectThresholdSorted(sorted, opts)
}

// selectThresholdSorted is SelectThreshold on a sample already validated
// finite and sorted ascending. It never mutates sorted and never retains
// it (exceedance sets are fresh slices). The streaming estimator calls it
// directly on its maintained order statistics — because sorting is a
// permutation and every downstream quantity is computed from the sorted
// order, the result is bitwise-identical to SelectThreshold on any
// permutation of the same observations.
func selectThresholdSorted(sorted []float64, opts ThresholdOptions) (Threshold, error) {
	o := opts.withDefaults()
	n := len(sorted)
	maxM := int(float64(n) * o.MaxExceedFraction)
	if maxM < o.MinExceedances {
		return Threshold{}, fmt.Errorf("%w: %d observations allow at most %d exceedances at fraction %.3f, need >= %d",
			ErrSampleTooSmall, n, maxM, o.MaxExceedFraction, o.MinExceedances)
	}

	mePoints, err := MeanExcess(sorted)
	if err != nil {
		return Threshold{}, err
	}

	// build selects the threshold keeping ~m observations. The exceedance
	// set is strictly above u — the same strict `>` the mean-excess plot,
	// the ECDF tail count 1 − F̂(u) and the planner's exceedance
	// probability all use — so observations equal to the threshold are
	// never double-counted into the tail.
	//
	// Ties need care: when the m-th order statistic lands inside a run of
	// repeated values, none of the run is strictly above u and the strict
	// count can starve below MinExceedances even though plenty of tail
	// data exists. A tie run is atomic — no threshold can split it — so
	// the candidate snaps down to the next smaller distinct value, taking
	// the whole run into the tail. That can overshoot MaxExceedFraction·n;
	// the overshoot is forced by quantization (discrete performance
	// populations produce exactly such samples) and is preferred to
	// failing the analysis outright.
	build := func(m int) (Threshold, error) {
		u := sorted[n-m-1]
		// first marks the first copy of u, end the first strict exceedance.
		first := sort.SearchFloat64s(sorted, u)
		end := first
		for end < n && sorted[end] == u {
			end++
		}
		for n-end < o.MinExceedances && first > 0 {
			u = sorted[first-1]
			end = first
			first = sort.SearchFloat64s(sorted, u)
		}
		ys := make([]float64, 0, n-end)
		for _, x := range sorted[end:] {
			ys = append(ys, x-u)
		}
		if len(ys) < o.MinExceedances {
			return Threshold{}, fmt.Errorf("%w: only %d exceedances above u=%v", ErrSampleTooSmall, len(ys), u)
		}
		// A snapped-down threshold can leave too few mean-excess points at
		// or above u to fit a line. That is a missing diagnostic, not a
		// zero one: LinearityOK distinguishes "no fit available" from a
		// genuine R² of 0, so reports never present a snapped threshold as
		// perfectly non-linear.
		thr := Threshold{U: u, Exceedances: ys}
		if lin, err := MeanExcessLinearity(mePoints, u); err == nil {
			thr.Linearity, thr.LinearityOK = lin, true
		}
		return thr, nil
	}

	if o.Rule == RuleMaxFraction {
		return build(maxM)
	}

	// Scan a coarse grid of exceedance counts (scores vary smoothly, so
	// ~16 candidates suffice and keep the repeated GPD fits cheap).
	step := (maxM - o.MinExceedances) / 15
	if step < 1 {
		step = 1
	}
	type candidate struct {
		thr     Threshold
		score   float64
		bounded bool // fitted ξ < 0
	}
	var cands []candidate
	for m := maxM; m >= o.MinExceedances; m -= step {
		cand, err := build(m)
		if err != nil {
			continue
		}
		switch o.Rule {
		case RuleLinearityScan:
			if !cand.LinearityOK {
				// No linearity diagnostic exists for this candidate (tie-run
				// snap-down); it cannot be scored, rather than scoring as a
				// perfect non-linearity of 0.
				continue
			}
			cands = append(cands, candidate{thr: cand, score: cand.Linearity.R2, bounded: true})
		default: // RuleAuto
			fit, err := FitGPD(cand.Exceedances)
			if err != nil {
				continue
			}
			cand.QQCorr = QQCorrelation(QuantilePlot(cand.Exceedances, fit.GPD))
			cands = append(cands, candidate{thr: cand, score: cand.QQCorr, bounded: fit.GPD.Xi < 0})
		}
	}
	if len(cands) == 0 {
		return build(maxM)
	}
	// Bounded fits take absolute precedence: an unbounded (ξ >= 0) fit
	// cannot produce an upper performance bound no matter how straight its
	// quantile plot is.
	pool := cands[:0:0]
	for _, c := range cands {
		if c.bounded {
			pool = append(pool, c)
		}
	}
	if len(pool) == 0 {
		pool = cands
	}
	bestScore := pool[0].score
	for _, c := range pool[1:] {
		if c.score > bestScore {
			bestScore = c.score
		}
	}
	// Among near-ties on the score, prefer the candidate with the most
	// exceedances — more tail data tightens the confidence interval.
	const tie = 0.004
	var best *candidate
	for i := range pool {
		c := &pool[i]
		if c.score < bestScore-tie {
			continue
		}
		if best == nil || len(c.thr.Exceedances) > len(best.thr.Exceedances) {
			best = c
		}
	}
	return best.thr, nil
}
