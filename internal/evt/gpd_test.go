package evt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGPDExponentialSpecialCase(t *testing.T) {
	g := GPD{Xi: 0, Sigma: 2}
	for _, y := range []float64{0.1, 1, 3, 10} {
		if got, want := g.CDF(y), 1-math.Exp(-y/2); !almostEqual(got, want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", y, got, want)
		}
		if got, want := g.PDF(y), math.Exp(-y/2)/2; !almostEqual(got, want, 1e-12) {
			t.Errorf("PDF(%v) = %v, want %v", y, got, want)
		}
	}
	if !math.IsInf(g.RightEndpoint(), 1) {
		t.Error("ξ=0 endpoint should be +Inf")
	}
	if got, want := g.Quantile(0.5), 2*math.Ln2; !almostEqual(got, want, 1e-12) {
		t.Errorf("median = %v, want %v", got, want)
	}
}

func TestGPDNegativeShape(t *testing.T) {
	g := GPD{Xi: -0.5, Sigma: 1}
	// Endpoint at −σ/ξ = 2.
	if got := g.RightEndpoint(); got != 2 {
		t.Errorf("endpoint = %v, want 2", got)
	}
	// CDF at endpoint is 1; beyond is 1; density outside is 0.
	if g.CDF(2) != 1 || g.CDF(3) != 1 {
		t.Error("CDF at/beyond endpoint should be 1")
	}
	if g.PDF(2.5) != 0 {
		t.Error("PDF beyond endpoint should be 0")
	}
	// ξ=−1/2: G(y) = 1 − (1−y/2)². Check y=1: 1 − 0.25 = 0.75.
	if got := g.CDF(1); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("CDF(1) = %v, want 0.75", got)
	}
	if g.CDF(-1) != 0 || g.PDF(-1) != 0 {
		t.Error("negative y outside support")
	}
	if !math.IsInf(g.LogPDF(3), -1) {
		t.Error("LogPDF beyond endpoint should be -Inf")
	}
}

func TestGPDPositiveShape(t *testing.T) {
	g := GPD{Xi: 0.5, Sigma: 1}
	if !math.IsInf(g.RightEndpoint(), 1) {
		t.Error("ξ>0 endpoint should be +Inf")
	}
	// Heavy tail: mean σ/(1−ξ) = 2, variance infinite at ξ=0.5.
	if got := g.Mean(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("mean = %v", got)
	}
	if !math.IsInf(g.Variance(), 1) {
		t.Error("variance should be +Inf at ξ=0.5")
	}
}

func TestGPDMeanVariance(t *testing.T) {
	g := GPD{Xi: -0.25, Sigma: 2}
	if got, want := g.Mean(), 2/1.25; !almostEqual(got, want, 1e-12) {
		t.Errorf("mean = %v, want %v", got, want)
	}
	want := 4 / (1.25 * 1.25 * 1.5)
	if got := g.Variance(); !almostEqual(got, want, 1e-12) {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if !math.IsInf((GPD{Xi: 1.2, Sigma: 1}).Mean(), 1) {
		t.Error("mean should be +Inf for ξ>=1")
	}
}

func TestGPDValidate(t *testing.T) {
	if err := (GPD{Xi: -0.3, Sigma: 1}).Validate(); err != nil {
		t.Errorf("valid GPD rejected: %v", err)
	}
	for _, g := range []GPD{{Xi: 0, Sigma: 0}, {Xi: 0, Sigma: -1}, {Xi: math.NaN(), Sigma: 1}, {Xi: 0, Sigma: math.Inf(1)}} {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid GPD %+v accepted", g)
		}
	}
}

func TestGPDQuantileCDFRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := GPD{Xi: r.Float64()*1.5 - 0.9, Sigma: 0.1 + r.Float64()*5}
		p := r.Float64()*0.98 + 0.01
		y := g.Quantile(p)
		return almostEqual(g.CDF(y), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGPDCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := GPD{Xi: r.Float64()*2 - 1, Sigma: 0.1 + r.Float64()*3}
		a, b := r.Float64()*5, r.Float64()*5
		if a > b {
			a, b = b, a
		}
		return g.CDF(a) <= g.CDF(b)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGPDLogPDFMatchesPDF(t *testing.T) {
	gs := []GPD{{Xi: -0.4, Sigma: 1.3}, {Xi: 0, Sigma: 0.7}, {Xi: 0.6, Sigma: 2}}
	for _, g := range gs {
		for _, y := range []float64{0.01, 0.5, 1, 2} {
			p := g.PDF(y)
			if p == 0 {
				continue
			}
			if !almostEqual(g.LogPDF(y), math.Log(p), 1e-10) {
				t.Errorf("%v: LogPDF(%v) mismatch", g, y)
			}
		}
	}
}

func TestGPDSampleMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GPD{Xi: -0.3, Sigma: 2}
	ys := g.Sample(rng, 200000)
	var sum float64
	for _, y := range ys {
		sum += y
	}
	mean := sum / float64(len(ys))
	if !almostEqual(mean, g.Mean(), 0.02) {
		t.Errorf("sample mean = %v, want %v", mean, g.Mean())
	}
	// All samples inside the support.
	for _, y := range ys {
		if y < 0 || y > g.RightEndpoint()+1e-12 {
			t.Fatalf("sample %v outside support [0, %v]", y, g.RightEndpoint())
		}
	}
}

func TestGPDLogLikelihoodOutsideSupport(t *testing.T) {
	g := GPD{Xi: -0.5, Sigma: 1} // endpoint 2
	if !math.IsInf(g.LogLikelihood([]float64{0.5, 3}), -1) {
		t.Error("likelihood with out-of-support point should be -Inf")
	}
	if g.LogLikelihood([]float64{0.5, 1}) >= 0 {
		// log densities of interior points here are negative
		t.Error("unexpected non-negative log likelihood")
	}
}

func TestGPDString(t *testing.T) {
	s := (GPD{Xi: -0.25, Sigma: 1.5}).String()
	if s == "" {
		t.Error("empty String()")
	}
}
