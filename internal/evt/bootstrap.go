package evt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BootstrapOptions tunes BootstrapUPB. The zero value uses 500 replicates
// at the 0.95 level.
type BootstrapOptions struct {
	Replicates int     // default 500
	Alpha      float64 // default 0.05 (a 0.95 interval)
	Seed       int64
	// Estimator refits each replicate; nil uses FitGPD (maximum
	// likelihood). Pass FitGPDPWM for a much faster bootstrap.
	Estimator func([]float64) (Fit, error)
}

func (o BootstrapOptions) withDefaults() BootstrapOptions {
	if o.Replicates <= 0 {
		o.Replicates = 500
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.05
	}
	if o.Estimator == nil {
		o.Estimator = FitGPD
	}
	return o
}

// BootstrapUPB computes a parametric-bootstrap percentile confidence
// interval for the Upper Performance Bound: replicate exceedance sets are
// drawn from the fitted GPD, each is refitted, and the percentile band of
// the replicated endpoints forms the interval. Replicates whose refit has
// ξ >= 0 contribute an unbounded endpoint (they land in the upper tail of
// the percentile ordering), so an unbounded Hi means more than α/2 of the
// replicates could not bound the optimum — the bootstrap analogue of the
// Wilks interval's unbounded case.
//
// It is the alternative construction to UPBConfidenceInterval, used by the
// confidence-interval ablation.
func BootstrapUPB(u float64, ys []float64, fit Fit, opts BootstrapOptions) (UPBInterval, error) {
	o := opts.withDefaults()
	if len(ys) < 5 {
		return UPBInterval{}, ErrSampleTooSmall
	}
	point, err := UPBPoint(u, fit.GPD)
	if err != nil {
		return UPBInterval{}, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	endpoints := make([]float64, 0, o.Replicates)
	failures := 0
	for b := 0; b < o.Replicates; b++ {
		rep := fit.GPD.Sample(rng, len(ys))
		refit, err := o.Estimator(rep)
		if err != nil {
			failures++
			endpoints = append(endpoints, math.Inf(1))
			continue
		}
		if refit.GPD.Xi >= 0 {
			endpoints = append(endpoints, math.Inf(1))
			continue
		}
		endpoints = append(endpoints, u+refit.GPD.RightEndpoint())
	}
	if failures > o.Replicates/2 {
		return UPBInterval{}, fmt.Errorf("evt: bootstrap refit failed on %d of %d replicates", failures, o.Replicates)
	}
	sort.Float64s(endpoints)
	loIdx := int(o.Alpha / 2 * float64(len(endpoints)))
	hiIdx := int((1 - o.Alpha/2) * float64(len(endpoints)))
	if hiIdx >= len(endpoints) {
		hiIdx = len(endpoints) - 1
	}
	iv := UPBInterval{
		Point:      point,
		Lo:         endpoints[loIdx],
		Hi:         endpoints[hiIdx],
		Confidence: 1 - o.Alpha,
	}
	// The best observation is a hard lower bound on the optimum, whatever
	// the percentile band says.
	maxObs := u
	for _, y := range ys {
		if u+y > maxObs {
			maxObs = u + y
		}
	}
	if iv.Lo < maxObs {
		iv.Lo = maxObs
	}
	if iv.Lo > iv.Point {
		iv.Lo = iv.Point
	}
	if iv.Hi < iv.Point {
		iv.Hi = iv.Point
	}
	return iv, nil
}
