package evt

// Regression tests for the tail edge cases flushed out by the calibration
// harness (internal/calibrate): threshold selection on ties-heavy samples,
// the moment estimator's ξ >= 1/2 validity wall, the ξ → 0⁻ profile
// boundary, and degenerate (all-equal) exceedance sets. Each test fails on
// the pre-fix code.

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"optassign/internal/stats"
)

// tiesSample builds n observations whose upper tail is dominated by a run of
// `run` copies of the value `tied`, topped by `above` strictly larger
// distinct values. With n=1000, run=60, above=5 every candidate order
// statistic in the default scan grid (indices 949..979) lands inside the tie
// run, so the strict-exceedance count at every candidate threshold is 5 —
// the configuration that starved the pre-fix SelectThreshold into total
// failure even though a valid threshold exists just below the run.
func tiesSample(n, run, above int, tied float64) []float64 {
	xs := make([]float64, 0, n)
	body := n - run - above
	for i := 0; i < body; i++ {
		// Distinct, strictly below the tie run.
		xs = append(xs, tied*float64(i)/float64(body+1))
	}
	for i := 0; i < run; i++ {
		xs = append(xs, tied)
	}
	for i := 0; i < above; i++ {
		xs = append(xs, tied*(1.01+0.01*float64(i)))
	}
	// Shuffle deterministically: SelectThreshold must not depend on order.
	rng := rand.New(rand.NewSource(8))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return xs
}

func TestSelectThresholdTieRunDoesNotStarve(t *testing.T) {
	xs := tiesSample(1000, 60, 5, 100)
	for _, rule := range []ThresholdRule{RuleMaxFraction, RuleAuto, RuleLinearityScan} {
		thr, err := SelectThreshold(xs, ThresholdOptions{Rule: rule})
		if err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
		// The threshold must sit strictly below the tie run so the run joins
		// the tail atomically instead of vanishing from it.
		if thr.U >= 100 {
			t.Errorf("rule %v: threshold %v did not snap below the tie run at 100", rule, thr.U)
		}
		if len(thr.Exceedances) < 20 {
			t.Errorf("rule %v: only %d exceedances", rule, len(thr.Exceedances))
		}
	}
}

func TestSelectThresholdStrictAgreesWithECDF(t *testing.T) {
	// The exceedance extraction and ECDF tail counting must agree on strict
	// `>` at the threshold: exactly n·(1 − F̂(u)) observations become
	// exceedances, with none equal to u. Quantized samples make every
	// off-by-one or >= slip visible.
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 1500)
	for i := range xs {
		// Round to one decimal: heavy ties throughout the sample.
		xs[i] = math.Round(rng.Float64()*1000) / 10
	}
	ecdf := stats.NewECDF(xs)
	for _, rule := range []ThresholdRule{RuleMaxFraction, RuleAuto, RuleLinearityScan} {
		thr, err := SelectThreshold(xs, ThresholdOptions{Rule: rule})
		if err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
		wantTail := int(math.Round(float64(len(xs)) * (1 - ecdf.At(thr.U))))
		if len(thr.Exceedances) != wantTail {
			t.Errorf("rule %v: %d exceedances above u=%v, ECDF counts %d strictly above",
				rule, len(thr.Exceedances), thr.U, wantTail)
		}
		for _, y := range thr.Exceedances {
			if y <= 0 {
				t.Fatalf("rule %v: exceedance %v not strictly above threshold", rule, y)
			}
		}
	}
}

func TestFitGPDMomentsWallRejection(t *testing.T) {
	// A sample whose variance dwarfs its squared mean (v >= 10·m²) implies a
	// moment shape against the ξ = 1/2 wall — the infinite-variance regime
	// where the estimator's own asymptotics are void. The pre-fix code
	// silently clamped the shape and returned a garbage fit.
	ys := make([]float64, 0, 100)
	for i := 0; i < 99; i++ {
		ys = append(ys, 1+0.001*float64(i))
	}
	ys = append(ys, 1000)
	m, v := stats.Mean(ys), stats.Variance(ys)
	if v < 10*m*m {
		t.Fatalf("test construction broken: v=%v, m²=%v", v, m*m)
	}
	_, err := FitGPDMoments(ys)
	if !errors.Is(err, ErrMomentsUndefined) {
		t.Fatalf("err = %v, want ErrMomentsUndefined", err)
	}
	if !strings.Contains(err.Error(), "implied") {
		t.Errorf("error should report the implied shape: %v", err)
	}
	// The permissive seed estimator still accepts the same data — it only
	// feeds the likelihood search, which applies its own constraints.
	if _, err := MomentsEstimate(ys); err != nil {
		t.Errorf("MomentsEstimate should stay permissive: %v", err)
	}
}

func TestEstimatorDiagnosticsSurfaceRejection(t *testing.T) {
	d := newEstimatorDiag("moments", 50, Fit{}, ErrMomentsUndefined)
	if !d.Rejected || d.Method != "moments" {
		t.Fatalf("diag = %+v", d)
	}
	if d.Reason == "" {
		t.Error("rejected diagnostic must carry the reason")
	}
	if d.Xi != 0 || d.Sigma != 0 || d.UPB != 0 {
		t.Errorf("rejected diagnostic must zero its parameters: %+v", d)
	}
}

func TestAnalyzeEstimatorDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tail := GPD{Xi: -0.3, Sigma: 20}
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = 500 - tail.Rand(rng)
	}
	rep, err := Analyze(xs, POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Estimators) != 3 {
		t.Fatalf("Estimators = %d rows, want 3", len(rep.Estimators))
	}
	want := []string{"mle", "pwm", "moments"}
	for i, d := range rep.Estimators {
		if d.Method != want[i] {
			t.Errorf("Estimators[%d].Method = %q, want %q", i, d.Method, want[i])
		}
		for _, v := range []float64{d.Xi, d.Sigma, d.UPB} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s diagnostic has non-finite value: %+v", d.Method, d)
			}
		}
	}
	mle := rep.Estimators[0]
	if mle.Rejected || mle.Xi != rep.Fit.GPD.Xi || mle.Sigma != rep.Fit.GPD.Sigma {
		t.Errorf("MLE diagnostic does not mirror the report fit: %+v vs %+v", mle, rep.Fit.GPD)
	}
	if mle.Bounded && math.Abs(mle.UPB-rep.UPB.Point) > 1e-9 {
		t.Errorf("MLE diagnostic UPB %v != report point %v", mle.UPB, rep.UPB.Point)
	}
	// On clean GPD data all three estimators accept and agree on the sign of
	// the shape.
	for _, d := range rep.Estimators {
		if d.Rejected {
			t.Errorf("%s rejected clean GPD data: %s", d.Method, d.Reason)
		} else if !d.Bounded {
			t.Errorf("%s fitted unbounded shape %v on bounded data", d.Method, d.Xi)
		}
	}
}

func TestProfileNearZeroShapeDegradesToExponential(t *testing.T) {
	// Exceedances from an (almost exactly) exponential tail: ξ = −1e-7. The
	// closed-form profile must reach maximizing shapes of arbitrarily small
	// magnitude; the pre-fix search clipped at |ξ| >= 1e-9 and underestimated
	// the profile for large UPB, collapsing the Wilks interval.
	rng := rand.New(rand.NewSource(29))
	truth := GPD{Xi: -1e-7, Sigma: 2}
	ys := truth.Sample(rng, 2000)
	u := 100.0
	mean := stats.Mean(ys)

	// Far beyond the sample the profile approaches the exponential-model
	// maximum −m·log(ȳ) − m, with maximizing shape ≈ −ȳ/(UPB−u) — orders of
	// magnitude below any fixed clip.
	upb := u + 1e9*mean
	pl, xiHat := ProfileLogLikelihood(u, ys, upb)
	expLL := exponentialLimitLL(ys)
	if math.Abs(pl-expLL) > 1e-3 {
		t.Errorf("profile at huge UPB = %v, exponential limit = %v", pl, expLL)
	}
	if !(xiHat < 0) || xiHat < -1e-6 {
		t.Errorf("maximizing shape %v should be a tiny negative number", xiHat)
	}

	// Force a near-zero fitted shape (the calibration harness hits this when
	// the MLE lands within ~1e-6 of 0) and check the interval shape: the
	// likelihood-ratio test cannot reject ξ = 0, so the upper bound is +Inf,
	// while the lower bound is a genuine interior crossing — strictly above
	// the best observation, strictly below the point estimate. The pre-fix
	// code returned the collapsed [maxObs, point].
	fitG := GPD{Xi: -1e-7, Sigma: mean}
	fit := Fit{GPD: fitG, LogLikelihood: fitG.LogLikelihood(ys), Exceedances: len(ys), Method: "mle"}
	iv, err := UPBConfidenceInterval(u, ys, fit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	maxObs := u + stats.MustMax(ys)
	if !math.IsInf(iv.Hi, 1) {
		t.Errorf("Hi = %v, want +Inf (cannot reject an exponential tail)", iv.Hi)
	}
	if !(iv.Lo > maxObs) {
		t.Errorf("Lo = %v collapsed onto best observation %v", iv.Lo, maxObs)
	}
	if !(iv.Lo < iv.Point) {
		t.Errorf("Lo = %v not below point %v", iv.Lo, iv.Point)
	}
	// The crossing is a real likelihood-ratio boundary: the profile there
	// sits on the Wilks cut, not at −Inf.
	pl, _ = ProfileLogLikelihood(u, ys, iv.Lo)
	chi2, _ := stats.Chi2Quantile1DF(0.05)
	lmax := fit.LogLikelihood
	if p, _ := ProfileLogLikelihood(u, ys, iv.Point); p > lmax {
		lmax = p
	}
	if math.Abs(pl-(lmax-chi2/2)) > 1e-3*math.Abs(lmax-chi2/2)+1e-3 {
		t.Errorf("profile at Lo = %v, Wilks cut = %v", pl, lmax-chi2/2)
	}
}

func TestProfileClosedFormMatchesDirectMaximization(t *testing.T) {
	// The closed form ξ* = S/m must agree with brute-force maximization of
	// L(ξ, UPB) over a fine ξ grid, across the UPB range the interval search
	// visits.
	rng := rand.New(rand.NewSource(31))
	truth := GPD{Xi: -0.3, Sigma: 5}
	ys := truth.Sample(rng, 400)
	u := 10.0
	maxY := stats.MustMax(ys)
	for _, upb := range []float64{u + maxY*1.001, u + maxY*1.1, u + maxY*2, u + maxY*50} {
		pl, xiHat := ProfileLogLikelihood(u, ys, upb)
		endpoint := upb - u
		best := math.Inf(-1)
		for k := 0; k < 20000; k++ {
			xi := xiFloor + float64(k)*(math.Abs(xiFloor)-1e-9)/20000
			sigma := -xi * endpoint
			if ll := (GPD{Xi: xi, Sigma: sigma}).LogLikelihood(ys); ll > best {
				best = ll
			}
		}
		if pl < best-1e-6 {
			t.Errorf("UPB=%v: closed form %v below grid max %v", upb, pl, best)
		}
		if xiHat <= xiFloor-1e-12 || xiHat >= 0 {
			t.Errorf("UPB=%v: maximizing shape %v outside (−1, 0)", upb, xiHat)
		}
	}
}

func TestDegenerateExceedancesCleanErrors(t *testing.T) {
	allEqual := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	twoDistinct := []float64{1, 1, 1, 1, 2, 2, 2, 2}
	for name, ys := range map[string][]float64{"all-equal": allEqual, "two-distinct": twoDistinct} {
		if _, err := FitGPD(ys); !errors.Is(err, ErrSampleTooSmall) || !errors.Is(err, ErrDegenerateTail) {
			t.Errorf("FitGPD(%s) err = %v, want ErrDegenerateTail", name, err)
		}
		if _, err := FitGPDPWM(ys); !errors.Is(err, ErrDegenerateTail) {
			t.Errorf("FitGPDPWM(%s) err = %v, want ErrDegenerateTail", name, err)
		}
		if _, err := FitGPDMoments(ys); !errors.Is(err, ErrDegenerateTail) {
			t.Errorf("FitGPDMoments(%s) err = %v, want ErrDegenerateTail", name, err)
		}
	}
}

func TestAnalyzeDegenerateTailEndToEnd(t *testing.T) {
	// A quantized population whose entire upper tail is one repeated value:
	// after the tie-aware threshold snap the exceedance set is all-equal, so
	// the pipeline must reject with a typed sample-size error — never NaN or
	// ±Inf smuggled into a Report.
	n := 1000
	xs := make([]float64, 0, n)
	for i := 0; i < n-60; i++ {
		xs = append(xs, 90*float64(i)/float64(n))
	}
	for i := 0; i < 60; i++ {
		xs = append(xs, 100)
	}
	rep, err := Analyze(xs, POTOptions{})
	if err == nil {
		t.Fatalf("expected an error, got report %+v", rep)
	}
	if !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v, want an ErrSampleTooSmall-family error", err)
	}
}

func TestReportValidateFinite(t *testing.T) {
	good := Report{UPB: UPBInterval{Hi: math.Inf(1)}}
	if err := good.validateFinite(); err != nil {
		t.Errorf("+Inf Hi is the documented exception: %v", err)
	}
	bad := Report{QQCorr: math.NaN()}
	if err := bad.validateFinite(); err == nil {
		t.Error("NaN QQCorr must be rejected")
	}
	badEst := Report{Estimators: []EstimatorDiag{{Method: "pwm", Xi: math.Inf(-1)}}}
	if err := badEst.validateFinite(); err == nil {
		t.Error("non-finite estimator diagnostic must be rejected")
	}
}
