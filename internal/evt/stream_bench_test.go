package evt

import (
	"math/rand"
	"testing"
)

// The streaming estimator's economic claim, pinned: a per-commit Observe
// must be at least 10x cheaper than the full refit it replaces (in
// practice it is orders of magnitude cheaper — an O(√n)-ish chunk insert
// vs a threshold scan with ~16 GPD maximum-likelihood fits). Both
// benchmarks run at the same sample size so the gate compares like with
// like.

const streamBenchN = 20000

func streamBenchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(99))
	return GPD{Xi: -0.3, Sigma: 5}.Sample(rng, n)
}

// BenchmarkStreamUpdate measures one per-commit Observe on an estimator
// already holding streamBenchN observations.
func BenchmarkStreamUpdate(b *testing.B) {
	xs := streamBenchSample(streamBenchN)
	s := NewStreamEstimator(StreamOptions{POT: streamTestOpts()})
	if err := s.ObserveAll(xs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Observe(xs[i%len(xs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamRefit measures a scheduled full refit on the maintained
// order statistics (no re-sort; the pipeline itself dominates).
func BenchmarkStreamRefit(b *testing.B) {
	xs := streamBenchSample(streamBenchN)
	s := NewStreamEstimator(StreamOptions{POT: streamTestOpts()})
	if err := s.ObserveAll(xs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Refit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures the from-scratch batch analysis the
// streaming update amortizes away.
func BenchmarkAnalyze(b *testing.B) {
	xs := streamBenchSample(streamBenchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(xs, streamTestOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamUpdateBenchGate pins the ratio in CI: a regression that
// turns the per-commit update back into per-commit refit work (an
// accidental sort, an eager fit) fails the suite, not just a dashboard.
func TestStreamUpdateBenchGate(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped with -short")
	}
	update := testing.Benchmark(BenchmarkStreamUpdate)
	analyze := testing.Benchmark(BenchmarkAnalyze)
	perUpdate, perAnalyze := float64(update.NsPerOp()), float64(analyze.NsPerOp())
	t.Logf("per-commit update %.0f ns, full analysis %.0f ns (%.0fx)", perUpdate, perAnalyze, perAnalyze/perUpdate)
	if perAnalyze < 10*perUpdate {
		t.Errorf("per-commit update (%v ns) is not >= 10x cheaper than a full analysis (%v ns)", perUpdate, perAnalyze)
	}
}
