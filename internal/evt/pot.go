package evt

import "fmt"

// POTOptions configures a full Peak-Over-Threshold analysis. The zero value
// uses the paper's defaults: threshold by linearity scan capped at 5%
// exceedances, 0.95 confidence level.
type POTOptions struct {
	Threshold ThresholdOptions
	// Alpha is the complement of the confidence level (default 0.05 for a
	// 0.95 confidence interval, the level used throughout §5).
	Alpha float64
}

func (o POTOptions) withDefaults() POTOptions {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.05
	}
	return o
}

// Report is the result of a complete POT analysis of a performance sample:
// the estimated optimal system performance with its confidence interval and
// the diagnostics needed to judge whether the GPD model is trustworthy.
type Report struct {
	N           int         // sample size
	BestObs     float64     // best observed performance in the sample
	Threshold   Threshold   // selected threshold + exceedances
	Fit         Fit         // maximum-likelihood GPD fit
	UPB         UPBInterval // estimated optimum with confidence interval
	QQCorr      float64     // quantile-plot straightness, ~1 is good
	Regular     bool        // ξ̂ in (−1/2, 0): Wilks asymptotics fully apply
	HeadroomPct float64     // (UPB.Point − BestObs) / UPB.Point · 100
}

// Analyze runs the complete §3.3 pipeline on a raw performance sample:
// select the threshold, fit the GPD to the exceedances by maximum
// likelihood, estimate the Upper Performance Bound and its Wilks confidence
// interval, and attach goodness-of-fit diagnostics.
func Analyze(sample []float64, opts POTOptions) (Report, error) {
	o := opts.withDefaults()
	if len(sample) == 0 {
		return Report{}, ErrSampleTooSmall
	}
	thr, err := SelectThreshold(sample, o.Threshold)
	if err != nil {
		return Report{}, fmt.Errorf("threshold selection: %w", err)
	}
	fit, err := FitGPD(thr.Exceedances)
	if err != nil {
		return Report{}, fmt.Errorf("GPD fit: %w", err)
	}
	iv, err := UPBConfidenceInterval(thr.U, thr.Exceedances, fit, o.Alpha)
	if err != nil {
		return Report{}, fmt.Errorf("UPB interval: %w", err)
	}
	best := sample[0]
	for _, x := range sample[1:] {
		if x > best {
			best = x
		}
	}
	r := Report{
		N:         len(sample),
		BestObs:   best,
		Threshold: thr,
		Fit:       fit,
		UPB:       iv,
		QQCorr:    QQCorrelation(QuantilePlot(thr.Exceedances, fit.GPD)),
		Regular:   fit.GPD.Xi > -0.5 && fit.GPD.Xi < 0,
	}
	if iv.Point > 0 {
		r.HeadroomPct = (iv.Point - best) / iv.Point * 100
	}
	return r, nil
}
