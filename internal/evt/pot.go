package evt

import (
	"fmt"
	"math"
	"sort"
)

// POTOptions configures a full Peak-Over-Threshold analysis. The zero value
// uses the paper's defaults: threshold by linearity scan capped at 5%
// exceedances, 0.95 confidence level.
type POTOptions struct {
	Threshold ThresholdOptions
	// Alpha is the complement of the confidence level (default 0.05 for a
	// 0.95 confidence interval, the level used throughout §5).
	Alpha float64
}

func (o POTOptions) withDefaults() POTOptions {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.05
	}
	return o
}

// EstimatorDiag records how one GPD estimator fared on the selected
// exceedances. Analyze runs every estimator (MLE drives the report; PWM and
// moments are cross-checks) and keeps the outcome here so callers can see
// disagreement between methods — or that a method refused the data — without
// re-running the fits. Rejected entries carry the reason and zeroed
// parameters; accepted entries always hold finite values.
type EstimatorDiag struct {
	Method   string  // "mle", "pwm", "moments"
	Xi       float64 // fitted shape (0 when rejected)
	Sigma    float64 // fitted scale (0 when rejected)
	UPB      float64 // implied u − σ̂/ξ̂ (0 when rejected or unbounded)
	Bounded  bool    // fitted ξ < 0, so a finite UPB exists
	Rejected bool    // the estimator returned an error for this data
	Reason   string  // rejection reason ("" when accepted)
}

// Report is the result of a complete POT analysis of a performance sample:
// the estimated optimal system performance with its confidence interval and
// the diagnostics needed to judge whether the GPD model is trustworthy.
type Report struct {
	N           int             // sample size
	BestObs     float64         // best observed performance in the sample
	Threshold   Threshold       // selected threshold + exceedances
	Fit         Fit             // maximum-likelihood GPD fit
	UPB         UPBInterval     // estimated optimum with confidence interval
	QQCorr      float64         // quantile-plot straightness, ~1 is good
	Regular     bool            // ξ̂ in (−1/2, 0): Wilks asymptotics fully apply
	HeadroomPct float64         // (UPB.Point − BestObs) / UPB.Point · 100
	Estimators  []EstimatorDiag // per-estimator outcomes on the same exceedances
}

// HeadroomPercent returns the relative gap between an estimated
// performance bound and the best observed performance, as a percentage of
// the bound's magnitude: (bound − best)/|bound| · 100. Normalizing by
// |bound| keeps the gap meaningful on negative performance scales
// (latencies negated into "higher is better", log-scores), where dividing
// by the signed bound flipped the sign and a bound of exactly 0 divided
// to ±Inf/NaN. ok is false when no gap can be expressed — the bound is 0,
// or the subtraction overflows — and callers choose their own fallback (0
// for a display field, 100 for the conservative stopping rule).
func HeadroomPercent(bound, best float64) (pct float64, ok bool) {
	if bound == 0 {
		return 0, false
	}
	pct = (bound - best) / math.Abs(bound) * 100
	if math.IsNaN(pct) || math.IsInf(pct, 0) {
		return 0, false
	}
	return pct, true
}

// Analyze runs the complete §3.3 pipeline on a raw performance sample:
// select the threshold, fit the GPD to the exceedances by maximum
// likelihood, estimate the Upper Performance Bound and its Wilks confidence
// interval, and attach goodness-of-fit diagnostics. A sample containing
// NaN or ±Inf is rejected up front with ErrNonFiniteSample.
func Analyze(sample []float64, opts POTOptions) (Report, error) {
	if len(sample) == 0 {
		return Report{}, ErrSampleTooSmall
	}
	if err := checkFiniteSample(sample); err != nil {
		return Report{}, err
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	return analyzeSorted(sorted, opts)
}

// analyzeSorted is the shared pipeline core behind Analyze and
// StreamEstimator.Refit: the complete §3.3 analysis of a sample already
// validated finite and sorted ascending. Every quantity in the report is
// a function of the sorted order alone (the threshold scan, the
// exceedance sets, the fits, the maximum), so any two inputs holding the
// same multiset of finite observations produce bitwise-identical reports
// — the equivalence the streaming estimator's differential suite pins.
// The input is never mutated and never retained.
func analyzeSorted(sorted []float64, opts POTOptions) (Report, error) {
	o := opts.withDefaults()
	if len(sorted) == 0 {
		return Report{}, ErrSampleTooSmall
	}
	thr, err := selectThresholdSorted(sorted, o.Threshold)
	if err != nil {
		return Report{}, fmt.Errorf("threshold selection: %w", err)
	}
	fit, err := FitGPD(thr.Exceedances)
	if err != nil {
		return Report{}, fmt.Errorf("GPD fit: %w", err)
	}
	iv, err := UPBConfidenceInterval(thr.U, thr.Exceedances, fit, o.Alpha)
	if err != nil {
		return Report{}, fmt.Errorf("UPB interval: %w", err)
	}
	best := sorted[len(sorted)-1]
	r := Report{
		N:         len(sorted),
		BestObs:   best,
		Threshold: thr,
		Fit:       fit,
		UPB:       iv,
		QQCorr:    QQCorrelation(QuantilePlot(thr.Exceedances, fit.GPD)),
		Regular:   fit.GPD.Xi > -0.5 && fit.GPD.Xi < 0,
	}
	if h, ok := HeadroomPercent(iv.Point, best); ok {
		r.HeadroomPct = h
	}
	// Cross-check estimators on the same exceedances. The MLE entry mirrors
	// the fit above; PWM and moments run fresh and may legitimately refuse
	// data the MLE accepted (e.g. the moments estimator at its ξ >= 1/2
	// wall) — the diagnostic records who refused and why.
	pwmFit, pwmErr := FitGPDPWM(thr.Exceedances)
	momFit, momErr := FitGPDMoments(thr.Exceedances)
	r.Estimators = []EstimatorDiag{
		newEstimatorDiag("mle", thr.U, fit, nil),
		newEstimatorDiag("pwm", thr.U, pwmFit, pwmErr),
		newEstimatorDiag("moments", thr.U, momFit, momErr),
	}
	if err := r.validateFinite(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// newEstimatorDiag converts a (Fit, error) pair into its diagnostic row.
func newEstimatorDiag(method string, u float64, fit Fit, err error) EstimatorDiag {
	if err != nil {
		return EstimatorDiag{Method: method, Rejected: true, Reason: err.Error()}
	}
	d := EstimatorDiag{
		Method:  method,
		Xi:      fit.GPD.Xi,
		Sigma:   fit.GPD.Sigma,
		Bounded: fit.GPD.Xi < 0,
	}
	if d.Bounded {
		d.UPB = u + fit.GPD.RightEndpoint()
	}
	return d
}

// validateFinite guards the Report contract that every numeric field is
// finite — with the single documented exception of UPB.Hi, which is +Inf
// when the likelihood-ratio test cannot reject an unbounded tail. Any other
// NaN/±Inf means an upstream estimator leaked a degenerate value; surfacing
// it as an error here keeps garbage out of journals, JSON reports and the
// iterative loop's stopping rule.
func (r Report) validateFinite() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"BestObs", r.BestObs},
		{"Threshold.U", r.Threshold.U},
		{"Fit.Xi", r.Fit.GPD.Xi},
		{"Fit.Sigma", r.Fit.GPD.Sigma},
		{"Fit.LogLikelihood", r.Fit.LogLikelihood},
		{"UPB.Point", r.UPB.Point},
		{"UPB.Lo", r.UPB.Lo},
		{"QQCorr", r.QQCorr},
		{"HeadroomPct", r.HeadroomPct},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("evt: internal error: non-finite %s (%v) in report", c.name, c.v)
		}
	}
	if math.IsNaN(r.UPB.Hi) || math.IsInf(r.UPB.Hi, -1) {
		return fmt.Errorf("evt: internal error: non-finite UPB.Hi (%v) in report", r.UPB.Hi)
	}
	for _, d := range r.Estimators {
		for _, v := range []float64{d.Xi, d.Sigma, d.UPB} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("evt: internal error: non-finite %s estimator diagnostic (%v)", d.Method, v)
			}
		}
	}
	return nil
}
