package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelectThresholdMaxFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	thr, err := SelectThreshold(xs, ThresholdOptions{Rule: RuleMaxFraction})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly ~5% of 2000 = 100 exceedances (ties aside).
	if thr.Exceedances == nil || len(thr.Exceedances) < 95 || len(thr.Exceedances) > 100 {
		t.Errorf("exceedances = %d, want ≈ 100", len(thr.Exceedances))
	}
	for _, y := range thr.Exceedances {
		if y <= 0 {
			t.Fatalf("non-positive exceedance %v", y)
		}
	}
}

func TestSelectThresholdLinearityScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := GPD{Xi: -0.3, Sigma: 5}
	xs := g.Sample(rng, 3000)
	thr, err := SelectThreshold(xs, ThresholdOptions{Rule: RuleLinearityScan})
	if err != nil {
		t.Fatal(err)
	}
	n := len(xs)
	if len(thr.Exceedances) > int(0.05*float64(n)) {
		t.Errorf("scan kept %d exceedances, cap is %d", len(thr.Exceedances), int(0.05*float64(n)))
	}
	if len(thr.Exceedances) < 20 {
		t.Errorf("scan kept %d exceedances, floor is 20", len(thr.Exceedances))
	}
	if thr.Linearity.R2 <= 0 {
		t.Errorf("linearity diagnostic missing: %+v", thr.Linearity)
	}
}

func TestSelectThresholdTooSmall(t *testing.T) {
	xs := make([]float64, 50) // 5% of 50 = 2 < 20 minimum
	for i := range xs {
		xs[i] = float64(i)
	}
	if _, err := SelectThreshold(xs, ThresholdOptions{}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
}

func TestSelectThresholdCustomFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	thr, err := SelectThreshold(xs, ThresholdOptions{MaxExceedFraction: 0.2, MinExceedances: 30, Rule: RuleMaxFraction})
	if err != nil {
		t.Fatal(err)
	}
	if len(thr.Exceedances) < 30 || len(thr.Exceedances) > 100 {
		t.Errorf("exceedances = %d", len(thr.Exceedances))
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	// A full pipeline run on data whose optimum we know: performance is
	// bounded at exactly 1000 (GPD tail below it).
	rng := rand.New(rand.NewSource(44))
	tail := GPD{Xi: -0.35, Sigma: 30}
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = 1000 - tail.Rand(rng) // reflect: right endpoint at 1000
	}
	rep, err := Analyze(xs, POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 4000 {
		t.Errorf("N = %d", rep.N)
	}
	if rep.Fit.GPD.Xi >= 0 {
		t.Errorf("expected negative fitted shape, got %v", rep.Fit.GPD.Xi)
	}
	if rep.UPB.Point < rep.BestObs {
		t.Errorf("UPB %v below best observation %v", rep.UPB.Point, rep.BestObs)
	}
	// The estimate should land near the true optimum 1000 (within ~1%).
	if math.Abs(rep.UPB.Point-1000) > 10 {
		t.Errorf("UPB point = %v, want ≈ 1000", rep.UPB.Point)
	}
	if !(rep.UPB.Lo <= rep.UPB.Point && rep.UPB.Point <= rep.UPB.Hi) {
		t.Errorf("CI does not contain point: %+v", rep.UPB)
	}
	if rep.QQCorr < 0.98 {
		t.Errorf("QQ correlation = %v, expected near 1", rep.QQCorr)
	}
	if rep.HeadroomPct < 0 || rep.HeadroomPct > 20 {
		t.Errorf("headroom = %v%%", rep.HeadroomPct)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, POTOptions{}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	if _, err := Analyze([]float64{1, 2, 3}, POTOptions{}); err == nil {
		t.Error("tiny sample should error")
	}
}

func TestAnalyzeReflectedBoundsProperty(t *testing.T) {
	// For any bounded synthetic population the pipeline must return
	// BestObs <= UPB.Point and a CI containing the point.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := 100 + rng.Float64()*1000
		tail := GPD{Xi: -(0.15 + rng.Float64()*0.35), Sigma: bound * (0.01 + rng.Float64()*0.05)}
		xs := make([]float64, 1200)
		for i := range xs {
			xs[i] = bound - tail.Rand(rng)
		}
		rep, err := Analyze(xs, POTOptions{})
		if err != nil {
			// An occasional positive-ξ̂ fit on unlucky draws is acceptable
			// behaviour, not a property violation.
			return errors.Is(err, ErrUnboundedTail)
		}
		return rep.BestObs <= rep.UPB.Point &&
			rep.UPB.Lo <= rep.UPB.Point && rep.UPB.Point <= rep.UPB.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuantilePlotAndCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := GPD{Xi: -0.25, Sigma: 2}
	ys := g.Sample(rng, 1000)
	points := QuantilePlot(ys, g)
	if len(points) != 1000 {
		t.Fatalf("points = %d", len(points))
	}
	// Points are ordered in both coordinates.
	for i := 1; i < len(points); i++ {
		if points[i].Empirical < points[i-1].Empirical || points[i].Model < points[i-1].Model {
			t.Fatal("QQ points not monotone")
		}
	}
	if c := QQCorrelation(points); c < 0.995 {
		t.Errorf("correlation = %v for data from the model itself", c)
	}
	// Mismatched model yields visibly lower correlation than the true one.
	bad := QQCorrelation(QuantilePlot(ys, GPD{Xi: 0.9, Sigma: 0.1}))
	good := QQCorrelation(points)
	if !(bad <= good) {
		t.Errorf("bad model correlation %v not below good %v", bad, good)
	}
	if !math.IsNaN(QQCorrelation(nil)) {
		t.Error("empty correlation should be NaN")
	}
}
