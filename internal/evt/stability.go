package evt

import "sort"

// StabilityPoint is one threshold candidate of a parameter-stability scan.
type StabilityPoint struct {
	U           float64 // candidate threshold
	Exceedances int
	Xi          float64 // fitted shape at this threshold
	Sigma       float64 // fitted scale
	UPB         float64 // implied upper bound (NaN-free only when Xi < 0)
	UPBValid    bool
	FitErr      error // non-nil when the fit failed at this candidate
}

// StabilityScan fits the GPD at a grid of candidate thresholds — the
// classic POT "parameter stability plot": where the fitted shape ξ̂ is
// roughly constant in the threshold, the asymptotic regime has been
// reached, and the implied upper bound barely moves. Practitioners read
// this plot alongside the mean-excess plot (§3.3.2 Step 2); RuleAuto
// automates the same judgement, and this function exposes the raw curve
// for diagnostics, notebooks and the evtfit tool.
//
// Candidates keep between MinExceedances and MaxExceedFraction·n
// observations, on a grid of at most `points` thresholds (default 20).
func StabilityScan(xs []float64, opts ThresholdOptions, points int) ([]StabilityPoint, error) {
	o := opts.withDefaults()
	if points <= 0 {
		points = 20
	}
	n := len(xs)
	maxM := int(float64(n) * o.MaxExceedFraction)
	if maxM < o.MinExceedances {
		return nil, ErrSampleTooSmall
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	step := (maxM - o.MinExceedances) / points
	if step < 1 {
		step = 1
	}
	var out []StabilityPoint
	for m := maxM; m >= o.MinExceedances; m -= step {
		u := sorted[n-m-1]
		i := sort.SearchFloat64s(sorted, u)
		for i < n && sorted[i] == u {
			i++
		}
		ys := make([]float64, 0, n-i)
		for _, x := range sorted[i:] {
			ys = append(ys, x-u)
		}
		pt := StabilityPoint{U: u, Exceedances: len(ys)}
		fit, err := FitGPD(ys)
		if err != nil {
			pt.FitErr = err
			out = append(out, pt)
			continue
		}
		pt.Xi, pt.Sigma = fit.GPD.Xi, fit.GPD.Sigma
		if fit.GPD.Xi < 0 {
			pt.UPB = u + fit.GPD.RightEndpoint()
			pt.UPBValid = true
		}
		out = append(out, pt)
	}
	return out, nil
}
