package evt

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
)

// This file implements the streaming POT estimator: the §3.3 pipeline
// maintained incrementally across a campaign instead of refitted from a
// raw sample at the end. Two kinds of work happen at two cadences:
//
//   - per observation (every committed, tail-eligible measurement):
//     cheap monotone updates — an O(√n)-ish insertion into a chunked
//     order-statistics structure, the running best, the count of
//     observations above the last fitted threshold (the live ECDF tail
//     mass), and a commit-order hash that lets a resumed campaign verify
//     a restored checkpoint against its journal;
//
//   - per refit (a scheduled boundary): the full pipeline — threshold
//     scan, GPD maximum-likelihood fit, Wilks profile-likelihood
//     confidence interval — run by the exact same code path as the batch
//     Analyze on the materialized order statistics.
//
// The equivalence argument is structural, not numerical: Analyze is
// (finite check) + (sort a copy) + analyzeSorted, and sorting is a
// permutation, so feeding analyzeSorted a maintained sorted multiset of
// the same observations produces a bitwise-identical Report — same
// threshold, same exceedance slice, same optimizer trajectory, same
// interval — no matter how the observations were interleaved on the way
// in. The differential suite in stream_test.go pins this at every refit
// boundary. The single excluded edge is signed zero: −0.0 and +0.0
// compare equal, so their relative order within the sorted multiset is
// insertion-dependent; every downstream quantity is arithmetic on the
// values (where −0.0 behaves as +0.0), but a Threshold.U of −0.0 vs +0.0
// would differ in bits. Performance samples are magnitudes and never
// produce −0.0.

// StreamOptions configures a StreamEstimator. The zero value runs the
// paper-default POT analysis with refits driven entirely by explicit
// Refit calls (the engine mode: core.iterate refits on its Ninit/+Ndelta
// estimation schedule).
type StreamOptions struct {
	// POT configures each refit's analysis, exactly as for Analyze.
	POT POTOptions
	// AutoRefit enables the standalone doubling schedule: Observe
	// triggers a refit whenever the sample reaches the next scheduled
	// size. Off in engine mode, where the caller owns the schedule.
	AutoRefit bool
	// FirstRefit is the sample size of the first automatic refit
	// (default 64). Ignored without AutoRefit.
	FirstRefit int
	// Growth multiplies the sample size between automatic refits
	// (default 2 — refit at 64, 128, 256, ...). Each refit costs one
	// full analysis of the sample so far; geometric spacing keeps the
	// total refit work linear in the final sample size. Ignored without
	// AutoRefit.
	Growth float64
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.FirstRefit <= 0 {
		o.FirstRefit = 64
	}
	if o.Growth <= 1 {
		o.Growth = 2
	}
	return o
}

// StreamLive is the estimator's cheap live summary: everything updated
// per observation, plus the headline numbers of the last successful
// refit. It is what the engine publishes to gauges and the progress line
// between refits.
type StreamLive struct {
	N    int     // committed observations
	Best float64 // best observation so far (monotone)
	// Fitted reports at least one successful refit; until then the
	// threshold/UPB fields below are zero and meaningless.
	Fitted bool
	// U is the last fitted threshold; TailCount the number of
	// observations strictly above it, maintained per observation since
	// the refit; TailMass is TailCount/N, the live ECDF tail mass.
	U         float64
	TailCount int
	TailMass  float64
	// UPB, Lo, Hi are the last refit's optimum estimate and confidence
	// interval. Hi is +Inf when the last refit could not reject an
	// unbounded tail at the interval's confidence level.
	UPB, Lo, Hi float64
	// RefitCount counts successful refits; LastRefitN is the sample size
	// of the last one; NextRefitN the next automatic refit size (0 when
	// AutoRefit is off).
	RefitCount int
	LastRefitN int
	NextRefitN int
}

// CIWidth is the confidence interval's width, +Inf while the upper bound
// is unbounded, and 0 before the first successful refit.
func (l StreamLive) CIWidth() float64 {
	if !l.Fitted {
		return 0
	}
	return l.Hi - l.Lo
}

// StreamState is the serializable checkpoint of a StreamEstimator. It
// carries the complete sorted multiset of observations — a restored
// estimator refits without re-reading the original sample — plus the
// commit-order hash that ties the state to the exact measurement prefix
// that produced it, so a resumed campaign can verify the checkpoint
// against its replayed journal before trusting it.
//
// Two fields exist only to survive encoding/json: Hash is the FNV-1a
// value as a hex string (a uint64 above 2^53 does not round-trip through
// a JSON number), and HiUnbounded stands in for UPBHi = +Inf (JSON has
// no Inf; UPBHi is 0 when HiUnbounded is set).
type StreamState struct {
	N           int       `json:"n"`
	Hash        string    `json:"hash"`
	Sorted      []float64 `json:"sorted"`
	Best        float64   `json:"best"`
	Fitted      bool      `json:"fitted,omitempty"`
	U           float64   `json:"u,omitempty"`
	TailCount   int       `json:"tail_count,omitempty"`
	UPBPoint    float64   `json:"upb_point,omitempty"`
	UPBLo       float64   `json:"upb_lo,omitempty"`
	UPBHi       float64   `json:"upb_hi,omitempty"`
	HiUnbounded bool      `json:"hi_unbounded,omitempty"`
	RefitCount  int       `json:"refit_count,omitempty"`
	LastRefitN  int       `json:"last_refit_n,omitempty"`
	NextRefitN  int       `json:"next_refit_n,omitempty"`
}

// Chunk sizing for the order-statistics structure: chunks are rebuilt at
// streamChunkTarget on bulk loads and split in half once an insertion
// grows one past streamChunkMax, so a single insert moves at most
// streamChunkMax float64s and the chunk directory stays small enough
// that its binary search is noise.
const (
	streamChunkTarget = 512
	streamChunkMax    = 1024
)

// orderStats is a chunked sorted list: chunks are disjoint, ascending
// within and across, so the concatenation is the sorted multiset. It
// exists because a flat sorted slice costs an O(n) memmove per insert —
// at fleet-campaign sizes that is the difference between a per-commit
// update and a per-commit re-sort.
type orderStats struct {
	chunks [][]float64
}

func (o *orderStats) insert(x float64) {
	if len(o.chunks) == 0 {
		c := make([]float64, 1, streamChunkTarget)
		c[0] = x
		o.chunks = append(o.chunks, c)
		return
	}
	// First chunk whose maximum is >= x holds x's position; a value
	// above every maximum goes at the end of the last chunk.
	i := sort.Search(len(o.chunks), func(i int) bool {
		c := o.chunks[i]
		return c[len(c)-1] >= x
	})
	if i == len(o.chunks) {
		i--
	}
	c := o.chunks[i]
	j := sort.SearchFloat64s(c, x)
	c = append(c, 0)
	copy(c[j+1:], c[j:])
	c[j] = x
	o.chunks[i] = c
	if len(c) > streamChunkMax {
		mid := len(c) / 2
		left := append(make([]float64, 0, streamChunkMax), c[:mid]...)
		right := append(make([]float64, 0, streamChunkMax), c[mid:]...)
		o.chunks = append(o.chunks, nil)
		copy(o.chunks[i+2:], o.chunks[i+1:])
		o.chunks[i] = left
		o.chunks[i+1] = right
	}
}

// fromSorted bulk-loads an already-sorted slice, copying it into fresh
// chunks (the input is not retained).
func (o *orderStats) fromSorted(sorted []float64) {
	o.chunks = nil
	for len(sorted) > 0 {
		n := streamChunkTarget
		if n > len(sorted) {
			n = len(sorted)
		}
		o.chunks = append(o.chunks, append(make([]float64, 0, streamChunkMax), sorted[:n]...))
		sorted = sorted[n:]
	}
}

// materialize returns the sorted multiset as one fresh slice of length n.
func (o *orderStats) materialize(n int) []float64 {
	out := make([]float64, 0, n)
	for _, c := range o.chunks {
		out = append(out, c...)
	}
	return out
}

// FNV-1a over the IEEE-754 bits of each observation in commit order.
// Insertion-order sensitivity is the point: the hash identifies the
// exact measurement prefix, so a checkpoint restored against a journal
// that committed the same values in a different order — a different
// campaign — is rejected.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func foldHash(h uint64, x float64) uint64 {
	bits := math.Float64bits(x)
	for i := 0; i < 64; i += 8 {
		h ^= (bits >> i) & 0xff
		h *= fnvPrime64
	}
	return h
}

func hashHex(h uint64) string {
	return fmt.Sprintf("%016x", h)
}

// CommitOrderHash is the hash a StreamEstimator would carry after
// observing xs in order. Resume paths use it to verify a checkpoint's
// Hash against the journal-replayed prefix.
func CommitOrderHash(xs []float64) string {
	h := uint64(fnvOffset64)
	for _, x := range xs {
		h = foldHash(h, x)
	}
	return hashHex(h)
}

// StreamEstimator maintains POT state incrementally over a stream of
// committed observations. Observe is the cheap per-commit update; Refit
// runs the full analysis on the maintained order statistics and is
// bitwise-equal to Analyze on the same observations in any order. The
// zero value is not usable; construct with NewStreamEstimator or
// RestoreStream.
//
// All methods are safe for concurrent use, though the engine's commit
// path is already serial; the lock mainly lets progress displays read
// Live while a campaign is mid-batch.
type StreamEstimator struct {
	mu   sync.Mutex
	opts StreamOptions
	os   orderStats
	n    int
	best float64
	hash uint64
	live StreamLive
}

// NewStreamEstimator returns an empty estimator.
func NewStreamEstimator(opts StreamOptions) *StreamEstimator {
	opts = opts.withDefaults()
	s := &StreamEstimator{opts: opts, hash: fnvOffset64}
	if opts.AutoRefit {
		s.live.NextRefitN = opts.FirstRefit
	}
	return s
}

// Observe commits one observation: order-statistics insertion, hash
// fold, monotone live-summary updates, and — in AutoRefit mode — a refit
// when the schedule comes due (automatic refit errors are not fatal to
// the stream: an early sample may be legitimately too small or its tail
// still unbounded, and the schedule simply advances; call Refit for the
// error). Non-finite observations are rejected with ErrNonFiniteSample
// before touching any state.
func (s *StreamEstimator) Observe(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("%w: observation %d is %v", ErrNonFiniteSample, s.N(), x)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.os.insert(x)
	s.hash = foldHash(s.hash, x)
	s.n++
	if s.n == 1 || x > s.best {
		s.best = x
	}
	if s.live.Fitted && x > s.live.U {
		s.live.TailCount++
	}
	if s.opts.AutoRefit && s.n >= s.live.NextRefitN {
		s.refitLocked()
	}
	return nil
}

// ObserveAll commits each observation in order, stopping at the first
// rejected one.
func (s *StreamEstimator) ObserveAll(xs []float64) error {
	for _, x := range xs {
		if err := s.Observe(x); err != nil {
			return err
		}
	}
	return nil
}

// N is the number of committed observations.
func (s *StreamEstimator) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// HashHex is the commit-order hash over everything observed so far, in
// the format CommitOrderHash produces.
func (s *StreamEstimator) HashHex() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return hashHex(s.hash)
}

// Live returns the current live summary.
func (s *StreamEstimator) Live() StreamLive {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveLocked()
}

func (s *StreamEstimator) liveLocked() StreamLive {
	l := s.live
	l.N = s.n
	l.Best = s.best
	if s.n > 0 && l.Fitted {
		l.TailMass = float64(l.TailCount) / float64(s.n)
	}
	return l
}

// Refit runs the full §3.3 analysis on the committed observations. On
// success the live summary adopts the new threshold, interval and tail
// count; on error (sample too small, degenerate or unbounded tail, ...)
// the live summary keeps the previous fit and only the automatic
// schedule advances. The returned Report is bitwise-equal to
// Analyze(sample, opts.POT) for any commit order of the same sample.
func (s *StreamEstimator) Refit() (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refitLocked()
}

func (s *StreamEstimator) refitLocked() (Report, error) {
	if s.opts.AutoRefit {
		next := s.opts.FirstRefit
		for next <= s.n {
			grown := int(math.Ceil(float64(next) * s.opts.Growth))
			if grown <= next {
				grown = next + 1
			}
			next = grown
		}
		s.live.NextRefitN = next
	}
	rep, err := analyzeSorted(s.os.materialize(s.n), s.opts.POT)
	if err != nil {
		return Report{}, err
	}
	s.live.Fitted = true
	s.live.U = rep.Threshold.U
	s.live.TailCount = len(rep.Threshold.Exceedances)
	s.live.UPB = rep.UPB.Point
	s.live.Lo = rep.UPB.Lo
	s.live.Hi = rep.UPB.Hi
	s.live.RefitCount++
	s.live.LastRefitN = s.n
	return rep, nil
}

// Snapshot captures the estimator's complete serializable state.
func (s *StreamEstimator) Snapshot() StreamState {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.liveLocked()
	st := StreamState{
		N:          s.n,
		Hash:       hashHex(s.hash),
		Sorted:     s.os.materialize(s.n),
		Best:       s.best,
		Fitted:     l.Fitted,
		U:          l.U,
		TailCount:  l.TailCount,
		UPBPoint:   l.UPB,
		UPBLo:      l.Lo,
		RefitCount: l.RefitCount,
		LastRefitN: l.LastRefitN,
		NextRefitN: l.NextRefitN,
	}
	if math.IsInf(l.Hi, 1) {
		st.HiUnbounded = true
	} else {
		st.UPBHi = l.Hi
	}
	return st
}

// RestoreStream rebuilds an estimator from a checkpoint. The state is
// validated structurally — observation count, sortedness, finiteness,
// hash syntax — but the hash itself can only be verified by whoever
// holds the original commit-order prefix (see CommitOrderHash); resume
// paths do that against the replayed journal before feeding new
// observations.
func RestoreStream(st StreamState, opts StreamOptions) (*StreamEstimator, error) {
	if st.N != len(st.Sorted) {
		return nil, fmt.Errorf("evt: stream checkpoint carries %d observations but claims n=%d", len(st.Sorted), st.N)
	}
	if err := checkFiniteSample(st.Sorted); err != nil {
		return nil, fmt.Errorf("evt: stream checkpoint: %w", err)
	}
	for i := 1; i < len(st.Sorted); i++ {
		if st.Sorted[i] < st.Sorted[i-1] {
			return nil, fmt.Errorf("evt: stream checkpoint observations not sorted at index %d", i)
		}
	}
	hash := uint64(fnvOffset64)
	if st.N > 0 {
		var err error
		hash, err = strconv.ParseUint(st.Hash, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("evt: stream checkpoint hash %q: %w", st.Hash, err)
		}
	}
	s := NewStreamEstimator(opts)
	s.os.fromSorted(st.Sorted)
	s.n = st.N
	s.hash = hash
	s.best = st.Best
	s.live.Fitted = st.Fitted
	s.live.U = st.U
	s.live.TailCount = st.TailCount
	s.live.UPB = st.UPBPoint
	s.live.Lo = st.UPBLo
	s.live.Hi = st.UPBHi
	if st.HiUnbounded {
		s.live.Hi = math.Inf(1)
	}
	s.live.RefitCount = st.RefitCount
	s.live.LastRefitN = st.LastRefitN
	if st.NextRefitN > 0 {
		s.live.NextRefitN = st.NextRefitN
	}
	return s, nil
}
