package evt

import (
	"math"
	"sort"
)

// QQPoint pairs an empirical quantile with the corresponding model quantile.
type QQPoint struct {
	Empirical float64 // ordered exceedance y_(i)
	Model     float64 // G⁻¹(q_i) under the fitted GPD
}

// QuantilePlot returns the quantile-plot points of the exceedances ys
// against the fitted GPD g, using plotting positions q_i = i/(n+1). If the
// sample really originates from g the points lie close to the diagonal; the
// paper (§3.3.2 Step 2) uses this as the second goodness-of-fit check next
// to the mean-excess plot.
func QuantilePlot(ys []float64, g GPD) []QQPoint {
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	n := len(sorted)
	points := make([]QQPoint, n)
	for i, y := range sorted {
		q := float64(i+1) / float64(n+1)
		points[i] = QQPoint{Empirical: y, Model: g.Quantile(q)}
	}
	return points
}

// QQCorrelation returns the Pearson correlation between empirical and model
// quantiles — a scalar "how straight is the quantile plot" summary in
// [0, 1] for well-behaved fits. Values near 1 strongly suggest the sample
// follows the fitted family.
func QQCorrelation(points []QQPoint) float64 {
	n := len(points)
	if n < 2 {
		return math.NaN()
	}
	var mx, my float64
	for _, p := range points {
		mx += p.Empirical
		my += p.Model
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, syy, sxy float64
	for _, p := range points {
		dx, dy := p.Empirical-mx, p.Model-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
