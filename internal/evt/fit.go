package evt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"optassign/internal/optimize"
	"optassign/internal/stats"
)

// Fit is the outcome of estimating GPD parameters from exceedances.
type Fit struct {
	GPD           GPD
	LogLikelihood float64
	Exceedances   int
	Method        string // "mle" or "moments"
}

// xiFloor bounds the shape parameter away from −1. Below ξ = −1 the GPD
// likelihood is unbounded (the density diverges at the right endpoint), so —
// as is standard practice for POT estimation — the search is restricted to
// ξ > −1, where the interior local maximum lives. Wilks-based intervals
// additionally assume ξ > −1/2 for full asymptotic regularity; diagnostics
// flag fits outside that region.
const xiFloor = -0.999

// ErrDegenerateTail reports an exceedance set with fewer than 3 distinct
// values — all ties, or nearly so. No two-parameter tail model is
// identifiable from such data (the likelihood degenerates toward a point
// mass), so every estimator rejects it up front instead of producing
// NaN/±Inf parameters. It wraps ErrSampleTooSmall: callers that already
// treat "not enough tail data" as a keep-sampling signal handle this case
// for free.
var ErrDegenerateTail = fmt.Errorf("%w: degenerate exceedances (fewer than 3 distinct values)", ErrSampleTooSmall)

// ErrMomentsUndefined reports a method-of-moments estimate pressed against
// the ξ = 1/2 validity wall. The estimator's formula ξ̂ = (1 − m²/v)/2 can
// never emit ξ̂ >= 1/2, but its *asymptotic variance* requires the sampled
// tail to have ξ < 1/2 (finite population variance): samples whose implied
// shape sits against the wall (v >> m², i.e. ξ̂ within 0.05 of 1/2) are the
// fingerprint of exactly that infinite-variance regime, where the estimate
// is noise. Rejecting with a typed error replaces the old silent clamp
// that handed callers a garbage fit.
var ErrMomentsUndefined = errors.New("evt: moment estimator undefined: implied shape is in the ξ >= 1/2 infinite-variance regime")

// momentShapeWall is the rejection bound for FitGPDMoments: implied shapes
// at or above it (equivalently v >= 10·m²) are treated as the ξ >= 1/2
// regime the moment estimator cannot see.
const momentShapeWall = 0.45

// distinctValues counts the distinct values of ys (exactly, not within a
// tolerance — ties from quantized measurements are exactly equal floats).
func distinctValues(ys []float64) int {
	if len(ys) == 0 {
		return 0
	}
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	return distinct
}

// MomentsEstimate returns the method-of-moments GPD estimate from
// exceedances ys, using
//
//	ξ̂ = (1 − m²/v)/2,  σ̂ = m(1 − ξ̂)
//
// where m and v are the sample mean and variance. It is both a cheap
// estimator in its own right (the ablation baseline) and the starting point
// of the maximum-likelihood search.
func MomentsEstimate(ys []float64) (GPD, error) {
	if len(ys) < 2 {
		return GPD{}, ErrSampleTooSmall
	}
	m := stats.Mean(ys)
	v := stats.Variance(ys)
	if !(m > 0) {
		return GPD{}, errors.New("evt: exceedances must be positive")
	}
	if !(v > 0) {
		return GPD{}, ErrDegenerateTail
	}
	xi := (1 - m*m/v) / 2
	if xi < xiFloor {
		xi = xiFloor + 0.01
	}
	if xi > 0.9 {
		xi = 0.9
	}
	sigma := m * (1 - xi)
	if sigma <= 0 {
		sigma = m
	}
	g := GPD{Xi: xi, Sigma: sigma}
	// The moments estimate can place the implied endpoint below the sample
	// maximum when ξ̂ < 0; nudge σ up so every observation is in-support,
	// otherwise the fit would assign zero likelihood to its own data.
	if g.Xi < 0 {
		maxY := stats.MustMax(ys)
		if need := -g.Xi * maxY * 1.0001; g.Sigma < need {
			g.Sigma = need
		}
	}
	return g, nil
}

// FitGPD computes the maximum-likelihood GPD fit to the exceedances ys
// (observations already reduced by the threshold, all >= 0) by minimizing
// the negative log-likelihood with Nelder-Mead, exactly as the paper does
// with Matlab's fminsearch (§3.3.2 Step 3). The scale is searched in log
// space so positivity is structural, and support violations return +Inf.
func FitGPD(ys []float64) (Fit, error) {
	if len(ys) < 5 {
		return Fit{}, fmt.Errorf("%w: need at least 5 exceedances, have %d", ErrSampleTooSmall, len(ys))
	}
	if distinctValues(ys) < 3 {
		return Fit{}, ErrDegenerateTail
	}
	start, err := MomentsEstimate(ys)
	if err != nil {
		return Fit{}, err
	}

	negLL := func(p []float64) float64 {
		xi, sigma := p[0], math.Exp(p[1])
		if xi <= xiFloor || xi > 10 || !(sigma > 0) || math.IsInf(sigma, 1) {
			return math.Inf(1)
		}
		ll := (GPD{Xi: xi, Sigma: sigma}).LogLikelihood(ys)
		return -ll
	}

	res, err := optimize.NelderMead(negLL, []float64{start.Xi, math.Log(start.Sigma)}, &optimize.NelderMeadOptions{MaxIter: 2000})
	if err != nil {
		return Fit{}, err
	}
	if math.IsInf(res.F, 1) {
		return Fit{}, errors.New("evt: likelihood maximization failed to find a feasible point")
	}
	g := GPD{Xi: res.X[0], Sigma: math.Exp(res.X[1])}
	if err := g.Validate(); err != nil {
		return Fit{}, err
	}
	return Fit{GPD: g, LogLikelihood: -res.F, Exceedances: len(ys), Method: "mle"}, nil
}

// FitGPDMoments packages the method-of-moments estimate in the same Fit
// shape as FitGPD, for the estimator ablation and for production use as a
// cheap first-pass estimator. Unlike MomentsEstimate — which stays
// permissive because it only seeds the likelihood search — FitGPDMoments
// enforces the estimator's own validity region: an implied shape at the
// ξ >= 1/2 wall returns ErrMomentsUndefined instead of a clamped garbage
// fit, and a degenerate exceedance set returns ErrDegenerateTail.
func FitGPDMoments(ys []float64) (Fit, error) {
	if len(ys) < 2 {
		return Fit{}, ErrSampleTooSmall
	}
	if distinctValues(ys) < 3 {
		return Fit{}, ErrDegenerateTail
	}
	m := stats.Mean(ys)
	v := stats.Variance(ys)
	if m > 0 && v > 0 {
		if implied := (1 - m*m/v) / 2; implied >= momentShapeWall {
			return Fit{}, fmt.Errorf("%w (implied ξ̂ = %.4g)", ErrMomentsUndefined, implied)
		}
	}
	g, err := MomentsEstimate(ys)
	if err != nil {
		return Fit{}, err
	}
	return Fit{GPD: g, LogLikelihood: g.LogLikelihood(ys), Exceedances: len(ys), Method: "moments"}, nil
}
