package evt

import (
	"errors"
	"fmt"
	"math"

	"optassign/internal/optimize"
	"optassign/internal/stats"
)

// Fit is the outcome of estimating GPD parameters from exceedances.
type Fit struct {
	GPD           GPD
	LogLikelihood float64
	Exceedances   int
	Method        string // "mle" or "moments"
}

// xiFloor bounds the shape parameter away from −1. Below ξ = −1 the GPD
// likelihood is unbounded (the density diverges at the right endpoint), so —
// as is standard practice for POT estimation — the search is restricted to
// ξ > −1, where the interior local maximum lives. Wilks-based intervals
// additionally assume ξ > −1/2 for full asymptotic regularity; diagnostics
// flag fits outside that region.
const xiFloor = -0.999

// MomentsEstimate returns the method-of-moments GPD estimate from
// exceedances ys, using
//
//	ξ̂ = (1 − m²/v)/2,  σ̂ = m(1 − ξ̂)
//
// where m and v are the sample mean and variance. It is both a cheap
// estimator in its own right (the ablation baseline) and the starting point
// of the maximum-likelihood search.
func MomentsEstimate(ys []float64) (GPD, error) {
	if len(ys) < 2 {
		return GPD{}, ErrSampleTooSmall
	}
	m := stats.Mean(ys)
	v := stats.Variance(ys)
	if !(m > 0) || !(v > 0) {
		return GPD{}, errors.New("evt: exceedances must be positive with positive spread")
	}
	xi := (1 - m*m/v) / 2
	if xi < xiFloor {
		xi = xiFloor + 0.01
	}
	if xi > 0.9 {
		xi = 0.9
	}
	sigma := m * (1 - xi)
	if sigma <= 0 {
		sigma = m
	}
	g := GPD{Xi: xi, Sigma: sigma}
	// The moments estimate can place the implied endpoint below the sample
	// maximum when ξ̂ < 0; nudge σ up so every observation is in-support,
	// otherwise the fit would assign zero likelihood to its own data.
	if g.Xi < 0 {
		maxY := stats.MustMax(ys)
		if need := -g.Xi * maxY * 1.0001; g.Sigma < need {
			g.Sigma = need
		}
	}
	return g, nil
}

// FitGPD computes the maximum-likelihood GPD fit to the exceedances ys
// (observations already reduced by the threshold, all >= 0) by minimizing
// the negative log-likelihood with Nelder-Mead, exactly as the paper does
// with Matlab's fminsearch (§3.3.2 Step 3). The scale is searched in log
// space so positivity is structural, and support violations return +Inf.
func FitGPD(ys []float64) (Fit, error) {
	if len(ys) < 5 {
		return Fit{}, fmt.Errorf("%w: need at least 5 exceedances, have %d", ErrSampleTooSmall, len(ys))
	}
	start, err := MomentsEstimate(ys)
	if err != nil {
		return Fit{}, err
	}

	negLL := func(p []float64) float64 {
		xi, sigma := p[0], math.Exp(p[1])
		if xi <= xiFloor || xi > 10 || !(sigma > 0) || math.IsInf(sigma, 1) {
			return math.Inf(1)
		}
		ll := (GPD{Xi: xi, Sigma: sigma}).LogLikelihood(ys)
		return -ll
	}

	res, err := optimize.NelderMead(negLL, []float64{start.Xi, math.Log(start.Sigma)}, &optimize.NelderMeadOptions{MaxIter: 2000})
	if err != nil {
		return Fit{}, err
	}
	if math.IsInf(res.F, 1) {
		return Fit{}, errors.New("evt: likelihood maximization failed to find a feasible point")
	}
	g := GPD{Xi: res.X[0], Sigma: math.Exp(res.X[1])}
	if err := g.Validate(); err != nil {
		return Fit{}, err
	}
	return Fit{GPD: g, LogLikelihood: -res.F, Exceedances: len(ys), Method: "mle"}, nil
}

// FitGPDMoments packages the method-of-moments estimate in the same Fit
// shape as FitGPD, for the estimator ablation.
func FitGPDMoments(ys []float64) (Fit, error) {
	g, err := MomentsEstimate(ys)
	if err != nil {
		return Fit{}, err
	}
	return Fit{GPD: g, LogLikelihood: g.LogLikelihood(ys), Exceedances: len(ys), Method: "moments"}, nil
}
