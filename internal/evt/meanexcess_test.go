package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteMeanExcess recomputes e_n(u) naively for cross-checking.
func bruteMeanExcess(xs []float64, u float64) (float64, int) {
	var sum float64
	var m int
	for _, x := range xs {
		if x > u {
			sum += x - u
			m++
		}
	}
	if m == 0 {
		return math.NaN(), 0
	}
	return sum / float64(m), m
}

func TestMeanExcessMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	points, err := MeanExcess(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		want, m := bruteMeanExcess(xs, p.U)
		if p.Exceeds != m {
			t.Fatalf("exceeds at u=%v: got %d want %d", p.U, p.Exceeds, m)
		}
		if !almostEqual(p.E, want, 1e-9) {
			t.Fatalf("e(%v) = %v, want %v", p.U, p.E, want)
		}
	}
}

func TestMeanExcessExponentialIsFlat(t *testing.T) {
	// Memorylessness: exponential(σ) has constant mean excess σ.
	rng := rand.New(rand.NewSource(6))
	g := GPD{Xi: 0, Sigma: 2}
	xs := g.Sample(rng, 50000)
	points, err := MeanExcess(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Examine the body (skip the noisy extreme tail where few points remain).
	for _, p := range points {
		if p.Exceeds < 500 {
			break
		}
		if math.Abs(p.E-2) > 0.25 {
			t.Fatalf("mean excess at u=%v is %v, want ≈ 2", p.U, p.E)
		}
	}
}

func TestMeanExcessGPDSlope(t *testing.T) {
	// For GPD with ξ < 0, e(u) = (σ + ξu)/(1 − ξ): linear with slope
	// ξ/(1−ξ).
	rng := rand.New(rand.NewSource(7))
	truth := GPD{Xi: -0.3, Sigma: 2}
	xs := truth.Sample(rng, 80000)
	points, err := MeanExcess(xs)
	if err != nil {
		t.Fatal(err)
	}
	var us, es []float64
	for _, p := range points {
		if p.Exceeds >= 1000 { // stable region
			us = append(us, p.U)
			es = append(es, p.E)
		}
	}
	fit, err := FitLine(us, es)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := truth.Xi / (1 - truth.Xi)
	if math.Abs(fit.Slope-wantSlope) > 0.03 {
		t.Errorf("mean excess slope = %v, want %v", fit.Slope, wantSlope)
	}
	if fit.R2 < 0.97 {
		t.Errorf("R² = %v, expected near-linear plot", fit.R2)
	}
}

func TestMeanExcessSmallSample(t *testing.T) {
	if _, err := MeanExcess([]float64{1}); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	if _, err := MeanExcess(nil); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
}

func TestMeanExcessWithDuplicates(t *testing.T) {
	xs := []float64{1, 1, 1, 2, 2, 3}
	points, err := MeanExcess(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct thresholds only: u=1 and u=2.
	if len(points) != 2 {
		t.Fatalf("points = %+v, want 2 entries", points)
	}
	if points[0].U != 1 || points[0].Exceeds != 3 {
		t.Errorf("point[0] = %+v", points[0])
	}
	// e(1) = ((2−1)+(2−1)+(3−1))/3 = 4/3.
	if !almostEqual(points[0].E, 4.0/3.0, 1e-12) {
		t.Errorf("e(1) = %v", points[0].E)
	}
}

func TestFitLine(t *testing.T) {
	// Exact line: y = 3 + 2x.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 3, 1e-12) || !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	// Constant y fits exactly.
	fit, err = FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil || fit.R2 != 1 || fit.Slope != 0 {
		t.Errorf("constant fit = %+v err=%v", fit, err)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestMeanExcessLinearity(t *testing.T) {
	points := []MeanExcessPoint{{U: 1, E: 5}, {U: 2, E: 4}, {U: 3, E: 3}, {U: 4, E: 2}}
	fit, err := MeanExcessLinearity(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, -1, 1e-12) || !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := MeanExcessLinearity(points, 4.5); err == nil {
		t.Error("no points above threshold should error")
	}
}
