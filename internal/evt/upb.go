package evt

import (
	"errors"
	"fmt"
	"math"

	"optassign/internal/optimize"
	"optassign/internal/stats"
)

// ErrUnboundedTail reports a fitted shape ξ >= 0, for which the GPD has no
// finite right endpoint and the optimal performance cannot be bounded. On a
// real (finite) system the paper observes ξ̂ < 0 always; hitting this error
// usually means the threshold kept too few or too unstructured exceedances.
var ErrUnboundedTail = errors.New("evt: fitted shape ξ >= 0, upper bound undefined")

// UPBPoint returns the point estimate of the Upper Performance Bound
// (the paper's ÛPB = u − σ̂/ξ̂) for a threshold u and a fitted GPD with
// ξ < 0.
func UPBPoint(u float64, g GPD) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if g.Xi >= 0 {
		return 0, ErrUnboundedTail
	}
	return u + g.RightEndpoint(), nil
}

// UPBInterval is an estimated optimal system performance with its
// likelihood-ratio confidence interval.
type UPBInterval struct {
	Point      float64 // ÛPB = u − σ̂/ξ̂
	Lo, Hi     float64 // confidence interval bounds (Hi may be +Inf)
	Confidence float64 // e.g. 0.95
}

// ProfileLogLikelihood returns L*(UPB) = max_ξ L(ξ, UPB | y), the profile
// log-likelihood of the reparameterized GPD
//
//	L(ξ, UPB|y) = −m·log(−ξ(UPB−u)) − (1 + 1/ξ)·Σ log(1 − y_i/(UPB−u))
//
// (§3.3.2 Step 4), together with the maximizing ξ. UPB must exceed
// u + max(y); otherwise the data would be outside the support and −Inf is
// returned.
//
// The inner maximization is solved exactly: with S = Σ log(1 − y_i/(UPB−u))
// (strictly negative) the profile score −m/ξ + S/ξ² has its unique zero at
// ξ* = S/m, so no numerical search is needed. Crucially this keeps the
// ξ → 0⁻ boundary honest: for UPB far beyond the sample, ξ* is a tiny
// negative number (≈ −ȳ/(UPB−u)) that a search clipped at a fixed magnitude
// like 1e-9 could never reach — that clipping used to underestimate the
// profile near the point estimate of a near-exponential tail and collapse
// the Wilks interval. At ξ* the profile simplifies to
//
//	L*(UPB) = −m·log(−S·(UPB−u)/m) − S − m,
//
// which degrades continuously to the exponential limit −m·log(ȳ) − m as
// UPB → ∞.
func ProfileLogLikelihood(u float64, ys []float64, upb float64) (ll, xiHat float64) {
	m := float64(len(ys))
	endpoint := upb - u
	maxY := stats.MustMax(ys)
	if endpoint <= maxY {
		return math.Inf(-1), math.NaN()
	}
	// Pre-compute S = Σ log(1 − y/E); it does not depend on ξ.
	var sumLog float64
	for _, y := range ys {
		sumLog += math.Log1p(-y / endpoint)
	}
	xiHat = sumLog / m
	if xiHat <= xiFloor {
		// The endpoint is so close to max(y) that the unconstrained
		// maximizer leaves the admissible shape range; the profile is
		// increasing on (−1, ξ*), so the constrained maximum sits at the
		// ξ > −1 boundary the likelihood search uses everywhere else.
		xiHat = xiFloor
		return -(m*math.Log(-xiHat*endpoint) + (1+1/xiHat)*sumLog), xiHat
	}
	return -m*math.Log(-xiHat*endpoint) - (sumLog + m), xiHat
}

// exponentialLimitLL is lim_{UPB→∞} L*(UPB): the maximized log-likelihood
// of the ξ = 0 (exponential) tail model, −m·log(ȳ) − m. It is the supremum
// the profile approaches when the data cannot pin down a finite endpoint.
func exponentialLimitLL(ys []float64) float64 {
	m := float64(len(ys))
	return -m*math.Log(stats.Mean(ys)) - m
}

// UPBConfidenceInterval computes the (1−alpha) likelihood-ratio confidence
// interval for the Upper Performance Bound using Wilks' theorem: the
// interval contains every UPB with
//
//	L(ξ̂, ÛPB) − L*(UPB) < ½·χ²_{(1−α),1}
//
// (the paper's Equation 1). u is the POT threshold, ys the exceedances, and
// fit the maximum-likelihood GPD fit from FitGPD.
func UPBConfidenceInterval(u float64, ys []float64, fit Fit, alpha float64) (UPBInterval, error) {
	if len(ys) == 0 {
		return UPBInterval{}, ErrSampleTooSmall
	}
	if alpha <= 0 || alpha >= 1 {
		return UPBInterval{}, fmt.Errorf("evt: confidence alpha must be in (0,1), got %v", alpha)
	}
	point, err := UPBPoint(u, fit.GPD)
	if err != nil {
		return UPBInterval{}, err
	}
	chi2, err := stats.Chi2Quantile1DF(alpha)
	if err != nil {
		return UPBInterval{}, err
	}

	// The profile maximum can exceed the 2-parameter fit's likelihood
	// slightly if Nelder-Mead stopped early; use the larger as L_max so the
	// interval always contains the point estimate.
	lmax := fit.LogLikelihood
	if pl, _ := ProfileLogLikelihood(u, ys, point); pl > lmax {
		lmax = pl
	}
	cut := lmax - chi2/2
	h := func(upb float64) float64 {
		pl, _ := ProfileLogLikelihood(u, ys, upb)
		return pl - cut
	}

	maxObs := u + stats.MustMax(ys)
	iv := UPBInterval{Point: point, Confidence: 1 - alpha}

	// Lower bound: between the largest observation (where the profile
	// plunges to −∞) and the point estimate. The best observed performance
	// is always a valid lower bound for the optimum, so fall back to it if
	// the bracket degenerates numerically.
	//
	// The bracket must sit just *above* maxObs — the profile's support
	// starts there. A relative nudge like maxObs·(1+1e-12) moves the
	// wrong way when maxObs <= 0 (negative performance scales are legal:
	// latencies negated into "higher is better", log-scores), landing the
	// bracket in the −Inf region and skewing the bisection. Nextafter is
	// direction-correct for every sign and magnitude.
	loBracket := math.Nextafter(maxObs, math.Inf(1))
	if h(loBracket) >= 0 || point <= loBracket {
		iv.Lo = maxObs
	} else {
		lo, err := optimize.Bisect(h, loBracket, point, (point-loBracket)*1e-9)
		if err != nil {
			iv.Lo = maxObs
		} else {
			iv.Lo = lo
		}
	}

	// Upper bound. The profile tends to the exponential-model likelihood as
	// UPB → ∞, so when that limit clears the cut the likelihood-ratio test
	// cannot reject ξ = 0 and the interval is unbounded above — exactly the
	// ξ → 0⁻ degradation the paper's asymptotics imply. Testing the limit
	// analytically (instead of hunting for a sign change that never comes)
	// keeps near-zero fitted shapes from producing a collapsed or garbage
	// finite bound.
	if exponentialLimitLL(ys)-cut >= 0 {
		iv.Hi = math.Inf(1)
		return iv, nil
	}
	// Otherwise expand geometrically beyond the point estimate until the
	// profile drops below the cut, then bisect.
	span := point - u
	if span <= 0 {
		span = math.Max(1, math.Abs(point))
	}
	hi := point
	found := false
	for k := 0; k < 60; k++ {
		hi = point + span*math.Pow(2, float64(k))
		if h(hi) < 0 {
			found = true
			break
		}
	}
	if !found {
		iv.Hi = math.Inf(1)
	} else {
		x, err := optimize.Bisect(h, point, hi, (hi-point)*1e-9)
		if err != nil {
			iv.Hi = hi
		} else {
			iv.Hi = x
		}
	}
	// When the profile drops below the cut only at astronomically large UPB
	// values the bound carries no information; report it as unbounded.
	if iv.Hi > point+1000*span {
		iv.Hi = math.Inf(1)
	}
	return iv, nil
}

// ProfileCurve samples L*(UPB) at n points across [lo, hi]; it reproduces
// Figure 7. Values of UPB at or below u + max(y) yield −Inf.
func ProfileCurve(u float64, ys []float64, lo, hi float64, n int) (upbs, lls []float64) {
	if n < 2 {
		n = 2
	}
	upbs = make([]float64, n)
	lls = make([]float64, n)
	for i := 0; i < n; i++ {
		upb := lo + (hi-lo)*float64(i)/float64(n-1)
		upbs[i] = upb
		lls[i], _ = ProfileLogLikelihood(u, ys, upb)
	}
	return upbs, lls
}
