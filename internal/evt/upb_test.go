package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestUPBPoint(t *testing.T) {
	got, err := UPBPoint(10, GPD{Xi: -0.5, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 { // 10 − 1/(−0.5)
		t.Errorf("UPB = %v, want 12", got)
	}
	if _, err := UPBPoint(10, GPD{Xi: 0.1, Sigma: 1}); !errors.Is(err, ErrUnboundedTail) {
		t.Errorf("err = %v, want ErrUnboundedTail", err)
	}
	if _, err := UPBPoint(10, GPD{Xi: -0.5, Sigma: -1}); err == nil {
		t.Error("invalid scale should error")
	}
}

func TestProfileLogLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	truth := GPD{Xi: -0.3, Sigma: 1}
	ys := truth.Sample(rng, 1000)
	u := 100.0 // arbitrary threshold offset; profile works on exceedances

	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	point, err := UPBPoint(u, fit.GPD)
	if err != nil {
		t.Fatal(err)
	}

	// At the MLE's implied endpoint the profile equals the full MLE logL.
	pl, xiHat := ProfileLogLikelihood(u, ys, point)
	if math.Abs(pl-fit.LogLikelihood) > 1e-3*math.Abs(fit.LogLikelihood)+1e-3 {
		t.Errorf("profile at point = %v, full MLE logL = %v", pl, fit.LogLikelihood)
	}
	if math.Abs(xiHat-fit.GPD.Xi) > 0.02 {
		t.Errorf("profile ξ̂ = %v, fit ξ̂ = %v", xiHat, fit.GPD.Xi)
	}

	// Below the sample maximum the profile is −Inf.
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	if pl, _ := ProfileLogLikelihood(u, ys, u+maxY*0.99); !math.IsInf(pl, -1) {
		t.Errorf("profile below max obs = %v, want -Inf", pl)
	}

	// The profile is maximized near the point estimate: values to either
	// side are no larger.
	left, _ := ProfileLogLikelihood(u, ys, u+maxY+(point-u-maxY)*0.2)
	right, _ := ProfileLogLikelihood(u, ys, point+3*(point-u))
	if left > pl+1e-6 || right > pl+1e-6 {
		t.Errorf("profile not maximal at point: left=%v at-point=%v right=%v", left, pl, right)
	}
}

func TestUPBConfidenceIntervalBracketsTruth(t *testing.T) {
	// Exceedances drawn from a GPD with a known endpoint; the CI should
	// usually contain the true endpoint and always contain the point
	// estimate, with the best observation as a hard lower bound.
	truth := GPD{Xi: -0.25, Sigma: 1} // endpoint 4
	u := 50.0
	trueUPB := u + truth.RightEndpoint()

	contains := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		ys := truth.Sample(rng, 1500)
		fit, err := FitGPD(ys)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := UPBConfidenceInterval(u, ys, fit, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		maxObs := u
		for _, y := range ys {
			if u+y > maxObs {
				maxObs = u + y
			}
		}
		if iv.Lo < maxObs-1e-9 {
			t.Errorf("trial %d: CI lower bound %v below best observation %v", trial, iv.Lo, maxObs)
		}
		if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
			t.Errorf("trial %d: point %v outside CI [%v, %v]", trial, iv.Point, iv.Lo, iv.Hi)
		}
		if iv.Confidence != 0.95 {
			t.Errorf("confidence = %v", iv.Confidence)
		}
		if iv.Lo <= trueUPB && trueUPB <= iv.Hi {
			contains++
		}
	}
	// Nominal coverage is 95%; with 20 deterministic seeds we demand a
	// clear majority to catch gross miscalibration without flakiness.
	if contains < 15 {
		t.Errorf("CI contained the true endpoint in only %d/%d trials", contains, trials)
	}
}

func TestUPBConfidenceIntervalNegativeScale(t *testing.T) {
	// Performance metrics where "higher is better" is arranged by negation
	// (latencies, log-scores) put the whole sample below zero. The lower
	// bracket must still land just above the best observation: a relative
	// nudge like maxObs·(1+1e-12) moves *down* when maxObs < 0, into the
	// profile's −Inf region.
	truth := GPD{Xi: -0.25, Sigma: 1} // exceedances bounded by 4
	u := -50.0
	rng := rand.New(rand.NewSource(7))
	ys := truth.Sample(rng, 1500)
	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := UPBConfidenceInterval(u, ys, fit, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	maxObs := u + statsMax(ys)
	if maxObs >= 0 {
		t.Fatalf("test setup broken: maxObs = %v, want negative", maxObs)
	}
	if iv.Lo < maxObs {
		t.Errorf("CI lower bound %v below best observation %v", iv.Lo, maxObs)
	}
	if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
		t.Errorf("point %v outside CI [%v, %v]", iv.Point, iv.Lo, iv.Hi)
	}
	// The lower bound sits strictly inside the profile's support, so the
	// profile there is finite — not the −Inf region the old bracket hit.
	if iv.Lo > maxObs {
		if pl, _ := ProfileLogLikelihood(u, ys, iv.Lo); math.IsInf(pl, -1) {
			t.Errorf("profile at CI lower bound %v is -Inf", iv.Lo)
		}
	}
}

func statsMax(ys []float64) float64 {
	m := math.Inf(-1)
	for _, y := range ys {
		if y > m {
			m = y
		}
	}
	return m
}

func TestUPBConfidenceIntervalNarrowsWithSampleSize(t *testing.T) {
	// Figure 11's headline behaviour: more exceedances → tighter interval.
	truth := GPD{Xi: -0.3, Sigma: 2}
	u := 10.0
	width := func(n int) float64 {
		rng := rand.New(rand.NewSource(99))
		ys := truth.Sample(rng, n)
		fit, err := FitGPD(ys)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := UPBConfidenceInterval(u, ys, fit, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(iv.Hi, 1) {
			t.Fatalf("unbounded CI for n=%d", n)
		}
		return iv.Hi - iv.Lo
	}
	// n=50 exceedances cannot reject ξ=0 at this shape, so the smallest
	// usable sample here is 250.
	w250, w1000, w4000 := width(250), width(1000), width(4000)
	if !(w4000 < w1000 && w1000 < w250) {
		t.Errorf("widths did not shrink: n=250→%v n=1000→%v n=4000→%v", w250, w1000, w4000)
	}
}

func TestUPBConfidenceIntervalErrors(t *testing.T) {
	fit := Fit{GPD: GPD{Xi: -0.5, Sigma: 1}}
	if _, err := UPBConfidenceInterval(0, nil, fit, 0.05); !errors.Is(err, ErrSampleTooSmall) {
		t.Errorf("err = %v", err)
	}
	if _, err := UPBConfidenceInterval(0, []float64{1}, fit, 0); err == nil {
		t.Error("alpha=0 should error")
	}
	if _, err := UPBConfidenceInterval(0, []float64{1}, Fit{GPD: GPD{Xi: 0.1, Sigma: 1}}, 0.05); !errors.Is(err, ErrUnboundedTail) {
		t.Errorf("err = %v", err)
	}
}

func TestProfileCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	truth := GPD{Xi: -0.3, Sigma: 1}
	ys := truth.Sample(rng, 800)
	u := 5.0
	fit, err := FitGPD(ys)
	if err != nil {
		t.Fatal(err)
	}
	point, _ := UPBPoint(u, fit.GPD)
	upbs, lls := ProfileCurve(u, ys, point*0.98, point*1.2, 41)
	if len(upbs) != 41 || len(lls) != 41 {
		t.Fatalf("curve lengths %d %d", len(upbs), len(lls))
	}
	// The curve's maximum should be close to the point estimate.
	bi := 0
	for i, ll := range lls {
		if ll > lls[bi] {
			bi = i
		}
	}
	if math.Abs(upbs[bi]-point) > (upbs[1]-upbs[0])*4+1e-9 {
		t.Errorf("profile curve max at %v, point estimate %v", upbs[bi], point)
	}
	// Degenerate n is repaired.
	upbs, _ = ProfileCurve(u, ys, point, point*1.1, 1)
	if len(upbs) != 2 {
		t.Errorf("n=1 should become 2 points, got %d", len(upbs))
	}
}
