package faulty

// Proxy fault-repertoire mechanics: the Hold/Release partition gate and
// the SlowWrite trickle, tested against a plain line-echo server so the
// byte-level behavior is visible without the measurement protocol on top.

import (
	"bufio"
	"net"
	"os"
	"testing"
	"time"
)

// startEchoServer accepts connections and echoes newline-delimited lines.
func startEchoServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadBytes('\n')
					if len(line) > 0 {
						if _, werr := conn.Write(line); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

func TestProxyHoldPartitionsUntilRelease(t *testing.T) {
	p, err := NewProxyConfig(startEchoServer(t), ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Healthy link: a line echoes back.
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	if line, err := r.ReadString('\n'); err != nil || line != "ping\n" {
		t.Fatalf("echo = %q, %v", line, err)
	}

	// Partition: the connection stays up but nothing flows. The write
	// succeeds locally (TCP buffers it); the echo never arrives.
	p.Hold()
	if _, err := conn.Write([]byte("held\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if line, err := r.ReadString('\n'); err == nil {
		t.Fatalf("partitioned link delivered %q", line)
	} else if !os.IsTimeout(err) {
		t.Fatalf("partitioned read failed with %v, want timeout (link must stay open)", err)
	}

	// Heal: the buffered line flows through.
	p.Release()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, err := r.ReadString('\n'); err != nil || line != "held\n" {
		t.Fatalf("post-release echo = %q, %v", line, err)
	}
}

func TestProxySlowWriteTricklesBytes(t *testing.T) {
	const slow = 2 * time.Millisecond
	p, err := NewProxyConfig(startEchoServer(t), ProxyConfig{SlowWrite: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 21 bytes client→server at 2 ms/byte: the payload cannot complete in
	// under ~40 ms. The echo path (server→client) is full speed, so the
	// round-trip time measures the trickle alone.
	payload := "slowloris-handshake!\n"
	start := time.Now()
	if _, err := conn.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || line != payload {
		t.Fatalf("echo = %q, %v", line, err)
	}
	if elapsed := time.Since(start); elapsed < time.Duration(len(payload)-1)*slow {
		t.Fatalf("trickle too fast: %d bytes in %v", len(payload), elapsed)
	}
}

func TestProxyCloseUnblocksHeldForwarders(t *testing.T) {
	p, err := NewProxyConfig(startEchoServer(t), ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	// Park a forwarder at the gate mid-transfer, then close the proxy:
	// Close must not deadlock on the held goroutine.
	p.Hold()
	conn.Write([]byte("stuck\n"))
	time.Sleep(20 * time.Millisecond) // let the forwarder reach the gate
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a held forwarder")
	}
}
