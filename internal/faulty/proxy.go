package faulty

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// ProxyConfig tunes a Proxy's fault repertoire beyond the basic frame-
// counting cut.
type ProxyConfig struct {
	// DropAfter cuts each proxied connection after this many server→client
	// newline-delimited frames (the hello counts as one). ≤ 0 never cuts.
	DropAfter int
	// SlowWrite, when positive, turns the client→server direction into a
	// slowloris peer: bytes trickle through one at a time with this delay
	// between them, so a request that normally arrives in one write takes
	// len(request)×SlowWrite to complete. Servers must bound the whole
	// frame with a read deadline or hang forever on such a peer.
	SlowWrite time.Duration
}

// Proxy sits between a remote.Client and a remote.Server and injects
// transport faults deterministically: frame-counted connection cuts
// (DropAfter), on-demand bidirectional partitions (Hold/Release), and
// slowloris-style byte-trickled writes (SlowWrite). Clients see clean
// disconnects, silent links, or glacial peers — exactly the failure
// repertoire the reconnecting client, the fleet registry's heartbeat
// timers, and the server's read deadlines must absorb.
type Proxy struct {
	target string
	cfg    ProxyConfig

	l  net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	gate   *sync.Cond
	held   bool
	conns  map[net.Conn]struct{}
	closed bool
	cuts   int
}

// NewProxy listens on a fresh loopback port and forwards connections to
// target. dropAfter ≤ 0 never drops (a transparent proxy).
func NewProxy(target string, dropAfter int) (*Proxy, error) {
	return NewProxyConfig(target, ProxyConfig{DropAfter: dropAfter})
}

// NewProxyConfig is NewProxy with the full fault repertoire.
func NewProxyConfig(target string, cfg ProxyConfig) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, cfg: cfg, l: l, conns: make(map[net.Conn]struct{})}
	p.gate = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Cuts reports how many connections the proxy has dropped on purpose.
func (p *Proxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// Hold partitions every proxied connection: the links stay open but no
// byte flows in either direction until Release. To the peers it looks
// like a network partition — TCP keeps the sockets alive, heartbeats and
// responses just never arrive.
func (p *Proxy) Hold() {
	p.mu.Lock()
	p.held = true
	p.mu.Unlock()
}

// Release heals a Hold partition; buffered traffic resumes immediately.
func (p *Proxy) Release() {
	p.mu.Lock()
	p.held = false
	p.gate.Broadcast()
	p.mu.Unlock()
}

// pass blocks while the proxy is held; it reports false once the proxy
// has closed (forwarders should stop).
func (p *Proxy) pass() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.held && !p.closed {
		p.gate.Wait()
	}
	return !p.closed
}

// Close stops the proxy and severs every live link.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.gate.Broadcast() // unblock forwarders parked at a Hold gate
	p.mu.Unlock()
	err := p.l.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client, server) {
			return
		}
		p.wg.Add(1)
		go p.pipe(client, server)
	}
}

func (p *Proxy) track(conns ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		for _, c := range conns {
			c.Close()
		}
		return false
	}
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *Proxy) untrack(conns ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range conns {
		c.Close()
		delete(p.conns, c)
	}
}

// forward writes buf to dst honoring the partition gate and, in slowloris
// mode, the per-byte trickle. It reports false when the write (or the
// proxy) is done for.
func (p *Proxy) forward(dst net.Conn, buf []byte, slow time.Duration) bool {
	if slow <= 0 {
		if !p.pass() {
			return false
		}
		_, err := dst.Write(buf)
		return err == nil
	}
	for i := range buf {
		// Gate every byte: a Hold stalls a slowloris mid-frame too.
		if !p.pass() {
			return false
		}
		if _, err := dst.Write(buf[i : i+1]); err != nil {
			return false
		}
		time.Sleep(slow)
	}
	return true
}

// pipe shuttles bytes both ways, counting server→client frames; at the
// drop threshold it closes both sides.
func (p *Proxy) pipe(client, server net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client, server)

	done := make(chan struct{}, 2)
	// client → server: byte copy (trickled in slowloris mode).
	go func() {
		buf := make([]byte, 32*1024)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if !p.forward(server, buf[:n], p.cfg.SlowWrite) {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}()
	// server → client: frame-counting copy.
	go func() {
		r := bufio.NewReader(server)
		frames := 0
		for {
			line, err := r.ReadBytes('\n')
			if len(line) > 0 {
				if !p.forward(client, line, 0) {
					break
				}
			}
			if err != nil {
				break
			}
			frames++
			if p.cfg.DropAfter > 0 && frames >= p.cfg.DropAfter {
				p.mu.Lock()
				p.cuts++
				p.mu.Unlock()
				break
			}
		}
		done <- struct{}{}
	}()
	<-done
	// Sever both sides so the peer goroutine unblocks, then wait for it.
	client.Close()
	server.Close()
	<-done
}
