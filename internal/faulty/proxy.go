package faulty

import (
	"bufio"
	"net"
	"sync"
)

// Proxy sits between a remote.Client and a remote.Server and
// deterministically kills the link: each proxied connection is cut after
// DropAfter newline-delimited frames have flowed server→client (the hello
// counts as one frame). Clients see a clean mid-campaign disconnect —
// exactly what the reconnecting client must survive.
type Proxy struct {
	target    string
	dropAfter int

	l  net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	cuts   int
}

// NewProxy listens on a fresh loopback port and forwards connections to
// target. dropAfter ≤ 0 never drops (a transparent proxy).
func NewProxy(target string, dropAfter int) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, dropAfter: dropAfter, l: l, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Cuts reports how many connections the proxy has dropped on purpose.
func (p *Proxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// Close stops the proxy and severs every live link.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.l.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client, server) {
			return
		}
		p.wg.Add(1)
		go p.pipe(client, server)
	}
}

func (p *Proxy) track(conns ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		for _, c := range conns {
			c.Close()
		}
		return false
	}
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *Proxy) untrack(conns ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range conns {
		c.Close()
		delete(p.conns, c)
	}
}

// pipe shuttles bytes both ways, counting server→client frames; at the
// drop threshold it closes both sides.
func (p *Proxy) pipe(client, server net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client, server)

	done := make(chan struct{}, 2)
	// client → server: transparent byte copy.
	go func() {
		buf := make([]byte, 32*1024)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}()
	// server → client: frame-counting copy.
	go func() {
		r := bufio.NewReader(server)
		frames := 0
		for {
			line, err := r.ReadBytes('\n')
			if len(line) > 0 {
				if _, werr := client.Write(line); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
			frames++
			if p.dropAfter > 0 && frames >= p.dropAfter {
				p.mu.Lock()
				p.cuts++
				p.mu.Unlock()
				break
			}
		}
		done <- struct{}{}
	}()
	<-done
	// Sever both sides so the peer goroutine unblocks, then wait for it.
	client.Close()
	server.Close()
	<-done
}
