package faulty

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

func constRunner(perf float64) core.Runner {
	return core.RunnerFunc(func(a assign.Assignment) (float64, error) { return perf, nil })
}

func someAssignment() assign.Assignment {
	return assign.Assignment{Topo: t2.UltraSPARCT2(), Ctx: []int{0, 1, 2}}
}

func TestFaultSequenceIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, TransientRate: 0.3, PermanentRate: 0.05}
	run := func() []error {
		r := NewRunner(constRunner(1), cfg)
		var errs []error
		for i := 0; i < 200; i++ {
			_, err := r.Measure(someAssignment())
			errs = append(errs, err)
		}
		return errs
	}
	a, b := run(), run()
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("call %d differs between identically seeded runs", i)
		}
		if a[i] != nil && a[i].Error() != b[i].Error() {
			t.Fatalf("call %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFaultRatesRoughlyHonored(t *testing.T) {
	cfg := Config{Seed: 3, TransientRate: 0.2, PermanentRate: 0.1}
	r := NewRunner(constRunner(1), cfg)
	n := 5000
	for i := 0; i < n; i++ {
		r.Measure(someAssignment())
	}
	st := r.Stats()
	if got := float64(st.Transients) / float64(n); math.Abs(got-0.2) > 0.03 {
		t.Errorf("transient rate %.3f, want ≈0.20", got)
	}
	if got := float64(st.Permanents) / float64(n); math.Abs(got-0.1) > 0.02 {
		t.Errorf("permanent rate %.3f, want ≈0.10", got)
	}
	if st.Measured != n-st.Transients-st.Permanents {
		t.Errorf("stats don't add up: %+v", st)
	}
}

func TestFaultClassification(t *testing.T) {
	r := NewRunner(constRunner(1), Config{PermanentRate: 1})
	_, err := r.Measure(someAssignment())
	if !core.IsPermanent(err) || !errors.Is(err, ErrInjectedPermanent) {
		t.Errorf("permanent fault misclassified: %v", err)
	}
	r = NewRunner(constRunner(1), Config{TransientRate: 1})
	_, err = r.Measure(someAssignment())
	if core.IsPermanent(err) || !errors.Is(err, ErrInjected) {
		t.Errorf("transient fault misclassified: %v", err)
	}
}

func TestHangHonorsContext(t *testing.T) {
	r := NewRunner(constRunner(1), Config{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.MeasureContext(ctx, someAssignment())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hang ignored the context")
	}
	// Without a cancellable context the hang degrades to a transient
	// error instead of deadlocking.
	if _, err := r.Measure(someAssignment()); !errors.Is(err, ErrInjected) {
		t.Errorf("uncancellable hang: err = %v", err)
	}
}

func TestSpikeDelaysButSucceeds(t *testing.T) {
	r := NewRunner(constRunner(9), Config{SpikeRate: 1, Spike: 10 * time.Millisecond})
	start := time.Now()
	perf, err := r.Measure(someAssignment())
	if err != nil || perf != 9 {
		t.Fatalf("perf=%v err=%v", perf, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("spike did not delay")
	}
}

// TestFaultyCampaignMatchesFaultFree is the acceptance scenario at the
// runner level: a campaign through the fault injector at a 20% transient
// rate, retried by a ResilientRunner, must measure exactly the same
// assignment set as a fault-free campaign.
func TestFaultyCampaignMatchesFaultFree(t *testing.T) {
	topo := t2.UltraSPARCT2()
	perfOf := func(a assign.Assignment) float64 {
		s := 0.0
		for i, c := range a.Ctx {
			s += float64((c*13+i*5)%89) / 89
		}
		return 500 + 50*s
	}
	base := core.RunnerFunc(func(a assign.Assignment) (float64, error) { return perfOf(a), nil })

	clean, _, err := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(11)), topo, 10, 400, core.AsContextRunner(base))
	if err != nil {
		t.Fatal(err)
	}

	faultyRunner := NewRunner(base, Config{Seed: 23, TransientRate: 0.2})
	resilient := core.NewResilientRunner(faultyRunner, core.ResilientConfig{
		MaxAttempts: 8,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Millisecond,
	})
	faulted, skipped, err := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(11)), topo, 10, 400, resilient)
	if err != nil {
		t.Fatal(err)
	}
	// 0.2^8 residual failure probability per measurement ⇒ quarantines
	// are possible but vanishingly rare; tolerate none for this seed.
	if len(skipped) != 0 {
		t.Fatalf("unexpected quarantines: %d", len(skipped))
	}
	if len(faulted) != len(clean) {
		t.Fatalf("measured %d, want %d", len(faulted), len(clean))
	}
	for i := range clean {
		if clean[i].Perf != faulted[i].Perf {
			t.Fatalf("measurement %d differs", i)
		}
		for j := range clean[i].Assignment.Ctx {
			if clean[i].Assignment.Ctx[j] != faulted[i].Assignment.Ctx[j] {
				t.Fatalf("assignment %d differs", i)
			}
		}
	}
	if st := faultyRunner.Stats(); st.Transients == 0 {
		t.Error("fault injector never fired; the test proves nothing")
	}
}
