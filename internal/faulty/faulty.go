// Package faulty deterministically injects the failure modes a real
// measurement campaign meets — transient errors, permanent errors, hangs,
// latency spikes and dropped connections — so the fault-tolerance stack
// (core.ResilientRunner, the reconnecting remote.Client, the campaign
// journal) can be exercised in tests without a flaky testbed. Every fault
// sequence is driven by a seeded PRNG: same seed, same faults.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
)

// ErrInjected is the transient fault the Runner raises; retrying the same
// measurement can succeed.
var ErrInjected = errors.New("faulty: injected transient fault")

// ErrInjectedPermanent is the permanent fault (marked with
// core.Permanent when returned), modelling e.g. an assignment the testbed
// can never execute.
var ErrInjectedPermanent = errors.New("faulty: injected permanent fault")

// Config sets per-measurement fault probabilities. Rates are evaluated in
// order — permanent, transient, hang, spike — from a single uniform draw,
// so their sum must stay ≤ 1.
type Config struct {
	// Seed drives the fault PRNG; 0 means seed 1.
	Seed int64
	// PermanentRate is the probability a measurement fails permanently.
	PermanentRate float64
	// TransientRate is the probability a measurement fails transiently
	// (succeeds when retried, unless the PRNG strikes again).
	TransientRate float64
	// HangRate is the probability a measurement blocks until its context
	// is cancelled — the "hung testbed" scenario a per-attempt timeout
	// must cut short. Without a cancellable context the hang falls back
	// to failing transiently rather than deadlocking the caller.
	HangRate float64
	// SpikeRate and Spike inject latency: with probability SpikeRate the
	// measurement sleeps Spike (honoring ctx) before executing.
	SpikeRate float64
	Spike     time.Duration
	// KeyByAssignment makes each fault a pure function of (Seed, the
	// assignment, the attempt number stamped by core.WithAttempt) instead
	// of a draw from the shared sequential PRNG. The injected fault
	// sequence then no longer depends on the order measurements happen to
	// interleave in, so a parallel campaign meets the exact same faults as
	// a serial one — the mode the parallel-equivalence tests rely on.
	// Identical assignments drawn twice meet identical faults.
	KeyByAssignment bool
}

// Stats counts what the runner injected and executed.
type Stats struct {
	Calls      int // measurement attempts seen
	Measured   int // attempts that reached the inner runner and succeeded
	Transients int
	Permanents int
	Hangs      int
	Spikes     int
}

// Runner wraps a measurement runner with deterministic fault injection.
// It implements core.Runner and core.ContextRunner and is safe for
// concurrent use (though concurrent callers race for the PRNG sequence;
// deterministic concurrent tests should set Config.KeyByAssignment, which
// makes every fault independent of interleaving).
type Runner struct {
	cfg   Config
	inner core.ContextRunner

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewRunner wraps inner with the fault policy in cfg.
func NewRunner(inner core.Runner, cfg Config) *Runner {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Runner{
		cfg:   cfg,
		inner: core.AsContextRunner(inner),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats returns a snapshot of the injection counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

type fault int

const (
	faultNone fault = iota
	faultPermanent
	faultTransient
	faultHang
	faultSpike
)

// roll draws the fault for one attempt and updates the counters. In
// KeyByAssignment mode the uniform variate comes from a PRNG seeded by
// hashing (Seed, assignment, attempt) — order-independent — instead of
// from the shared sequential PRNG.
func (r *Runner) roll(ctx context.Context, a assign.Assignment) fault {
	var u float64
	keyed := r.cfg.KeyByAssignment
	if keyed {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%v|%d", r.cfg.Seed, a.Ctx, core.Attempt(ctx))
		u = rand.New(rand.NewSource(int64(h.Sum64()))).Float64()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Calls++
	if !keyed {
		u = r.rng.Float64()
	}
	switch {
	case u < r.cfg.PermanentRate:
		r.stats.Permanents++
		return faultPermanent
	case u < r.cfg.PermanentRate+r.cfg.TransientRate:
		r.stats.Transients++
		return faultTransient
	case u < r.cfg.PermanentRate+r.cfg.TransientRate+r.cfg.HangRate:
		r.stats.Hangs++
		return faultHang
	case u < r.cfg.PermanentRate+r.cfg.TransientRate+r.cfg.HangRate+r.cfg.SpikeRate:
		r.stats.Spikes++
		return faultSpike
	default:
		return faultNone
	}
}

// Measure implements core.Runner.
func (r *Runner) Measure(a assign.Assignment) (float64, error) {
	return r.MeasureContext(context.Background(), a)
}

// MeasureContext implements core.ContextRunner.
func (r *Runner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	switch r.roll(ctx, a) {
	case faultPermanent:
		return 0, core.Permanent(ErrInjectedPermanent)
	case faultTransient:
		if r.cfg.KeyByAssignment {
			// The global call counter is order-dependent; keyed mode must
			// produce identical error text regardless of interleaving.
			return 0, fmt.Errorf("%w (attempt %d)", ErrInjected, core.Attempt(ctx))
		}
		return 0, fmt.Errorf("%w (call %d)", ErrInjected, r.Stats().Calls)
	case faultHang:
		if ctx.Done() == nil {
			return 0, fmt.Errorf("%w (hang without cancellable context)", ErrInjected)
		}
		<-ctx.Done()
		return 0, ctx.Err()
	case faultSpike:
		t := time.NewTimer(r.cfg.Spike)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	perf, err := r.inner.MeasureContext(ctx, a)
	if err == nil {
		r.mu.Lock()
		r.stats.Measured++
		r.mu.Unlock()
	}
	return perf, err
}
