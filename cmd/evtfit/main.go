// Command evtfit runs the paper's §3.3 analysis on externally measured
// performance numbers: read one value per line (from files or stdin),
// select a Peak-Over-Threshold threshold, fit a Generalized Pareto
// Distribution to the exceedances by maximum likelihood, and report the
// estimated optimal performance with its confidence interval.
//
// This is the tool to point at measurements from a real machine — the
// method is architecture- and application-independent.
//
// Input is either plain numbers (one or more per line, '#' comments) or,
// with -campaign, the JSON-lines campaign files written by cmd/optassign.
//
// Usage:
//
//	evtfit [-confidence 0.95] [-maxfrac 0.05] [-minexceed 20] [-campaign] [file...]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"optassign/internal/campaign"
	"optassign/internal/evt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evtfit: ")

	confidence := flag.Float64("confidence", 0.95, "confidence level for the interval")
	maxFrac := flag.Float64("maxfrac", 0.05, "maximum fraction of the sample used as exceedances")
	minExceed := flag.Int("minexceed", 20, "minimum number of exceedances")
	asCampaign := flag.Bool("campaign", false, "inputs are campaign JSON-lines files (cmd/optassign -record output)")
	stability := flag.Bool("stability", false, "also print the parameter-stability scan (ξ̂ and implied bound per threshold)")
	flag.Parse()
	if *confidence <= 0 || *confidence >= 1 {
		log.Fatalf("confidence must be in (0,1), got %v", *confidence)
	}

	var sample []float64
	read := func(f *os.File, name string) error {
		if *asCampaign {
			c, err := campaign.Load(f)
			if err != nil {
				return err
			}
			sample = append(sample, c.Perfs()...)
			return nil
		}
		vals, err := campaign.ReadValues(f, name)
		if err != nil {
			return err
		}
		sample = append(sample, vals...)
		return nil
	}
	if flag.NArg() == 0 {
		if err := read(os.Stdin, "stdin"); err != nil {
			log.Fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		err = read(f, path)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if len(sample) == 0 {
		log.Fatal("no input values")
	}

	rep, err := evt.Analyze(sample, evt.POTOptions{
		Alpha: 1 - *confidence,
		Threshold: evt.ThresholdOptions{
			MaxExceedFraction: *maxFrac,
			MinExceedances:    *minExceed,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sample:               %d observations, best %.6g\n", rep.N, rep.BestObs)
	fmt.Printf("threshold u:          %.6g (%d exceedances, mean-excess R² %.3f)\n",
		rep.Threshold.U, len(rep.Threshold.Exceedances), rep.Threshold.Linearity.R2)
	fmt.Printf("GPD fit:              %v (logL %.4g, QQ correlation %.4f)\n",
		rep.Fit.GPD, rep.Fit.LogLikelihood, rep.QQCorr)
	if !rep.Regular {
		fmt.Printf("                      note: ξ̂ outside (−0.5, 0); Wilks asymptotics are approximate\n")
	}
	fmt.Printf("estimated optimum:    %.6g\n", rep.UPB.Point)
	if math.IsInf(rep.UPB.Hi, 1) {
		fmt.Printf("%.0f%% interval:        [%.6g, unbounded) — the tail cannot yet be distinguished from ξ=0\n",
			*confidence*100, rep.UPB.Lo)
	} else {
		fmt.Printf("%.0f%% interval:        [%.6g, %.6g]\n", *confidence*100, rep.UPB.Lo, rep.UPB.Hi)
	}
	fmt.Printf("best-vs-optimum gap:  %.2f%%\n", rep.HeadroomPct)

	if *stability {
		pts, err := evt.StabilityScan(sample, evt.ThresholdOptions{
			MaxExceedFraction: *maxFrac,
			MinExceedances:    *minExceed,
		}, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nparameter-stability scan:")
		fmt.Printf("%14s %8s %8s %12s %14s\n", "threshold", "exceed", "ξ̂", "σ̂", "implied bound")
		for _, p := range pts {
			if p.FitErr != nil {
				fmt.Printf("%14.6g %8d  fit failed: %v\n", p.U, p.Exceedances, p.FitErr)
				continue
			}
			bound := "n/a (ξ̂ >= 0)"
			if p.UPBValid {
				bound = fmt.Sprintf("%.6g", p.UPB)
			}
			fmt.Printf("%14.6g %8d %8.3f %12.5g %14s\n", p.U, p.Exceedances, p.Xi, p.Sigma, bound)
		}
	}
}
