// Command evtfit runs the paper's §3.3 analysis on externally measured
// performance numbers: read one value per line (from files or stdin),
// select a Peak-Over-Threshold threshold, fit a Generalized Pareto
// Distribution to the exceedances by maximum likelihood, and report the
// estimated optimal performance with its confidence interval.
//
// This is the tool to point at measurements from a real machine — the
// method is architecture- and application-independent.
//
// Input is either plain numbers (one or more per line, '#' comments) or,
// with -campaign, the JSON-lines campaign files written by cmd/optassign.
//
// Usage:
//
//	evtfit [-confidence 0.95] [-maxfrac 0.05] [-minexceed 20] [-campaign]
//	       [-stability] [-stream] [file...]
//
// -stream additionally replays the sample through the streaming
// estimator (evt.StreamEstimator), printing the converging optimum bound
// at each scheduled refit — the live view a long campaign gets on its
// -progress line and /metrics endpoint.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"optassign/internal/campaign"
	"optassign/internal/evt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evtfit: ")

	confidence := flag.Float64("confidence", 0.95, "confidence level for the interval")
	maxFrac := flag.Float64("maxfrac", 0.05, "maximum fraction of the sample used as exceedances")
	minExceed := flag.Int("minexceed", 20, "minimum number of exceedances")
	asCampaign := flag.Bool("campaign", false, "inputs are campaign JSON-lines files (cmd/optassign -record output)")
	stability := flag.Bool("stability", false, "also print the parameter-stability scan (ξ̂ and implied bound per threshold)")
	stream := flag.Bool("stream", false, "also replay the sample through the streaming estimator, printing the converging bound at each scheduled refit")
	flag.Parse()
	if *confidence <= 0 || *confidence >= 1 {
		log.Fatalf("confidence must be in (0,1), got %v", *confidence)
	}

	var sample []float64
	read := func(f *os.File, name string) error {
		if *asCampaign {
			c, err := campaign.Load(f)
			if err != nil {
				return err
			}
			sample = append(sample, c.Perfs()...)
			return nil
		}
		vals, err := campaign.ReadValues(f, name)
		if err != nil {
			return err
		}
		sample = append(sample, vals...)
		return nil
	}
	if flag.NArg() == 0 {
		if err := read(os.Stdin, "stdin"); err != nil {
			log.Fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		err = read(f, path)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if len(sample) == 0 {
		log.Fatal("no input values")
	}

	opts := evt.POTOptions{
		Alpha: 1 - *confidence,
		Threshold: evt.ThresholdOptions{
			MaxExceedFraction: *maxFrac,
			MinExceedances:    *minExceed,
		},
	}

	if *stream {
		// Replay the sample as a campaign would commit it: cheap per-
		// observation updates, a full refit at each doubling of the sample,
		// and a final refit on everything. The last line is bit-for-bit the
		// batch analysis printed below — the streaming estimator runs the
		// identical pipeline on its maintained order statistics.
		s := evt.NewStreamEstimator(evt.StreamOptions{POT: opts})
		fmt.Println("streaming refits (doubling schedule):")
		next := 64
		for i, x := range sample {
			if err := s.Observe(x); err != nil {
				log.Fatal(err)
			}
			n := i + 1
			if n != next && n != len(sample) {
				continue
			}
			for next <= n {
				next *= 2
			}
			rep, err := s.Refit()
			if err != nil {
				fmt.Printf("  n=%7d  no bound yet (%v)\n", n, err)
				continue
			}
			if math.IsInf(rep.UPB.Hi, 1) {
				fmt.Printf("  n=%7d  upb=%.6g  CI=[%.6g, unbounded)\n", n, rep.UPB.Point, rep.UPB.Lo)
				continue
			}
			fmt.Printf("  n=%7d  upb=%.6g ±%.3g  CI=[%.6g, %.6g]\n",
				n, rep.UPB.Point, (rep.UPB.Hi-rep.UPB.Lo)/2, rep.UPB.Lo, rep.UPB.Hi)
		}
		fmt.Println()
	}

	rep, err := evt.Analyze(sample, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sample:               %d observations, best %.6g\n", rep.N, rep.BestObs)
	// A tie-run snap-down can leave no mean-excess line fit at the chosen
	// threshold; that is a missing diagnostic, not an R² of 0.
	linearity := "mean-excess R² n/a (threshold snapped into a tie run)"
	if rep.Threshold.LinearityOK {
		linearity = fmt.Sprintf("mean-excess R² %.3f", rep.Threshold.Linearity.R2)
	}
	fmt.Printf("threshold u:          %.6g (%d exceedances, %s)\n",
		rep.Threshold.U, len(rep.Threshold.Exceedances), linearity)
	fmt.Printf("GPD fit:              %v (logL %.4g, QQ correlation %.4f)\n",
		rep.Fit.GPD, rep.Fit.LogLikelihood, rep.QQCorr)
	if !rep.Regular {
		fmt.Printf("                      note: ξ̂ outside (−0.5, 0); Wilks asymptotics are approximate\n")
	}
	fmt.Printf("estimated optimum:    %.6g\n", rep.UPB.Point)
	if math.IsInf(rep.UPB.Hi, 1) {
		fmt.Printf("%.0f%% interval:        [%.6g, unbounded) — the tail cannot yet be distinguished from ξ=0\n",
			*confidence*100, rep.UPB.Lo)
	} else {
		fmt.Printf("%.0f%% interval:        [%.6g, %.6g]\n", *confidence*100, rep.UPB.Lo, rep.UPB.Hi)
	}
	fmt.Printf("best-vs-optimum gap:  %.2f%%\n", rep.HeadroomPct)

	if *stability {
		pts, err := evt.StabilityScan(sample, evt.ThresholdOptions{
			MaxExceedFraction: *maxFrac,
			MinExceedances:    *minExceed,
		}, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nparameter-stability scan:")
		fmt.Printf("%14s %8s %8s %12s %14s\n", "threshold", "exceed", "ξ̂", "σ̂", "implied bound")
		for _, p := range pts {
			if p.FitErr != nil {
				fmt.Printf("%14.6g %8d  fit failed: %v\n", p.U, p.Exceedances, p.FitErr)
				continue
			}
			bound := "n/a (ξ̂ >= 0)"
			if p.UPBValid {
				bound = fmt.Sprintf("%.6g", p.UPB)
			}
			fmt.Printf("%14.6g %8d %8.3f %12.5g %14s\n", p.U, p.Exceedances, p.Xi, p.Sigma, bound)
		}
	}
}
