// Command paperbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints them in order.
//
// Usage:
//
//	paperbench [-seed N] [-only table1,fig1,...,fig14,ext-sched,ext-predictor,ext-ablation,ext-select,ext-search,ext-topology]
//	           [-timeout 30s] [-retries 3]
//
// -timeout and -retries arm the fault-tolerant measurement wrapper for the
// campaign samples (a no-op against the deterministic simulator, load-
// bearing when the measurement source is a flaky remote testbed).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optassign/internal/core"
	"optassign/internal/exp"
	"optassign/internal/proc"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout for campaign samples (0 disables)")
	retries := flag.Int("retries", 0, "retries per campaign measurement before quarantining it")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	env := exp.NewEnv(*seed)
	if *timeout > 0 || *retries > 0 {
		env.Resilience = &core.ResilientConfig{
			MaxAttempts: *retries + 1,
			Timeout:     *timeout,
			BaseDelay:   100 * time.Millisecond,
			Seed:        *seed,
		}
	}
	out := os.Stdout
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", id, err)
		os.Exit(1)
	}

	if run("table1") {
		rows, err := exp.Table1()
		if err != nil {
			fail("table1", err)
		}
		exp.PrintTable1(out, rows)
		fmt.Fprintln(out)
	}
	if run("fig1") {
		rows, err := exp.Figure1(env)
		if err != nil {
			fail("fig1", err)
		}
		exp.PrintFigure1(out, rows)
		fmt.Fprintln(out)
	}
	if run("fig2") {
		curves, err := exp.Figure2()
		if err != nil {
			fail("fig2", err)
		}
		exp.PrintFigure2(out, curves)
		fmt.Fprintln(out)
	}
	if run("fig3") {
		r, err := exp.Figure3(env)
		if err != nil {
			fail("fig3", err)
		}
		exp.PrintFigure3(out, r)
		fmt.Fprintln(out)
	}
	if run("fig45") {
		r, err := exp.Figure45(*seed)
		if err != nil {
			fail("fig45", err)
		}
		exp.PrintFigure45(out, r)
		fmt.Fprintln(out)
	}
	if run("fig6") {
		r, err := exp.Figure6(env)
		if err != nil {
			fail("fig6", err)
		}
		exp.PrintFigure6(out, r)
		fmt.Fprintln(out)
	}
	if run("fig7") {
		r, err := exp.Figure7(env)
		if err != nil {
			fail("fig7", err)
		}
		exp.PrintFigure7(out, r)
		fmt.Fprintln(out)
	}
	if run("fig10") || run("fig11") || run("fig12") {
		cells, err := exp.EstimationStudy(env)
		if err != nil {
			fail("fig10-12", err)
		}
		if run("fig10") {
			exp.PrintFigure10(out, cells)
			fmt.Fprintln(out)
		}
		if run("fig11") {
			exp.PrintFigure11(out, cells)
			fmt.Fprintln(out)
		}
		if run("fig12") {
			exp.PrintFigure12(out, cells)
			fmt.Fprintln(out)
		}
	}
	if run("fig14") {
		cells, err := exp.Figure14(env)
		if err != nil {
			fail("fig14", err)
		}
		exp.PrintFigure14(out, cells)
		fmt.Fprintln(out)
	}
	if run("ext-sched") {
		cells, err := exp.SchedulerStudy(env)
		if err != nil {
			fail("ext-sched", err)
		}
		exp.PrintSchedulerStudy(out, cells)
		fmt.Fprintln(out)
	}
	if run("ext-predictor") {
		cells, err := exp.PredictorStudy(env)
		if err != nil {
			fail("ext-predictor", err)
		}
		exp.PrintPredictorStudy(out, cells)
		fmt.Fprintln(out)
	}
	if run("ext-ablation") {
		cells, err := exp.AblationStudy(env)
		if err != nil {
			fail("ext-ablation", err)
		}
		exp.PrintAblationStudy(out, cells)
		fmt.Fprintln(out)
	}
	if run("ext-select") {
		r, err := exp.SelectStudy(env)
		if err != nil {
			fail("ext-select", err)
		}
		exp.PrintSelectStudy(out, r)
		fmt.Fprintln(out)
	}
	if run("ext-search") {
		cells, err := exp.SearchStrategyStudy(env)
		if err != nil {
			fail("ext-search", err)
		}
		exp.PrintSearchStrategyStudy(out, cells)
		fmt.Fprintln(out)
	}
	if run("ext-topology") {
		exp.PrintTopology(out, proc.UltraSPARCT2Machine())
		fmt.Fprintln(out)
		if err := exp.PrintBenchmarks(out, env); err != nil {
			fail("ext-topology", err)
		}
	}
}
