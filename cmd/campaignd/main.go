// Command campaignd is campaign-as-a-service: a multi-tenant coordinator
// that runs many statistical task-assignment campaigns concurrently, each
// journaled and checkpointed under one data directory, and serves their
// lifecycle and results over HTTP.
//
// Usage:
//
//	campaignd -data DIR [-addr :9160] [-max-concurrent 4]
//	          [-registry :9140] [-min-servers 1] [-buffer 64]
//
// The HTTP API:
//
//	POST /campaigns                submit a campaign spec (JSON)
//	GET  /campaigns                list campaigns (?state=, ?benchmark=)
//	GET  /campaigns/{id}           live status: samples, best, upb ±, gap
//	POST /campaigns/{id}/pause     stop at the next measurement boundary
//	POST /campaigns/{id}/resume    continue a paused or failed campaign
//	POST /campaigns/{id}/cancel    terminate (journal kept, row promoted)
//	GET  /query?q=EXPR             predicate query over finished campaigns
//	GET  /metrics, /healthz        Prometheus metrics and health
//
// Campaigns measure on per-campaign simulated testbeds by default;
// -registry hosts a fleet membership registry instead, fanning every
// campaign's draws out over the measurement servers (cmd/measured
// -register) that have joined.
//
// Durability: every campaign has a write-ahead journal and an estimator
// checkpoint under DIR. Kill the daemon at any instant and restart it:
// every in-flight campaign resumes from its journal and converges to the
// same result — the same journal bytes — as an uninterrupted run.
// Finished campaigns are promoted into an indexed table store under DIR,
// so /query answers over thousands of campaigns without reopening any
// journal. SIGTERM drains gracefully: campaigns stop at a measurement
// boundary and auto-resume on the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"optassign/internal/coord"
	"optassign/internal/obs"
	"optassign/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignd: ")

	addr := flag.String("addr", ":9160", "HTTP API listen address")
	data := flag.String("data", "", "data directory: journals, checkpoints, spec files and the result table (required)")
	maxConcurrent := flag.Int("max-concurrent", 4, "campaigns running simultaneously; the rest queue")
	registry := flag.String("registry", "", "host a fleet registry on this address and measure on servers that register with it (default: per-campaign simulated testbeds)")
	minServers := flag.Int("min-servers", 1, "with -registry, wait for this many registered servers before serving")
	buffer := flag.Int("buffer", 64, "result-table commit buffer size")
	flag.Parse()

	if *data == "" {
		log.Fatal("-data is required")
	}

	reg := obs.NewRegistry()
	source := coord.Source(coord.LocalSource{})
	if *registry != "" {
		pool := remote.NewPool(remote.PoolConfig{
			Client:  remote.ClientConfig{Metrics: remote.NewClientMetrics(reg)},
			Metrics: remote.NewPoolMetrics(reg),
		})
		defer pool.Close()
		fleet := remote.NewRegistry(pool, remote.RegistryConfig{
			Metrics: remote.NewMembershipMetrics(reg),
		})
		rl, err := net.Listen("tcp", *registry)
		if err != nil {
			log.Fatal(err)
		}
		go fleet.Serve(rl)
		defer fleet.Close()
		fmt.Printf("fleet registry at %s; waiting for %d server(s) (measured -register %s)\n",
			rl.Addr(), *minServers, rl.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = pool.WaitReady(ctx, *minServers)
		stop()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fleet ready: %d server(s), %d tasks on %s\n",
			pool.Size(), pool.Tasks(), pool.Topology())
		source = coord.PoolSource{Pool: pool}
	}

	c, err := coord.Open(coord.Config{
		DataDir:       *data,
		MaxConcurrent: *maxConcurrent,
		Source:        source,
		TableBuf:      *buffer,
		Metrics:       coord.NewMetrics(reg),
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		c.Close()
		log.Fatal(err)
	}
	srv := &http.Server{Handler: c.Handler(reg)}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	fmt.Printf("campaign service at http://%s (data in %s)\n", l.Addr(), *data)

	// SIGTERM / Ctrl-C: stop accepting, stop campaigns at a measurement
	// boundary, release every lock. Whatever was running resumes on the
	// next start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	log.Printf("shutting down: draining campaigns")
	srv.Close()
	if err := c.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained; all journals released")
}
