// Command asgcount computes the exact number of distinct task assignments
// for a workload on a cores × pipes × contexts topology — the Table 1
// calculator generalized to any machine shape.
//
// Usage:
//
//	asgcount [-cores 8] [-pipes 2] [-contexts 4] [-raw] tasks...
//
// With no task counts, the paper's Table 1 workload sizes are used.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"strconv"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asgcount: ")

	cores := flag.Int("cores", 8, "number of cores")
	pipes := flag.Int("pipes", 2, "hardware pipelines per core")
	contexts := flag.Int("contexts", 4, "hardware contexts per pipeline")
	raw := flag.Bool("raw", false, "also print raw (label-level) placement counts")
	flag.Parse()

	topo := t2.Topology{Cores: *cores, PipesPerCore: *pipes, ContextsPerPipe: *contexts}
	if err := topo.Validate(); err != nil {
		log.Fatal(err)
	}

	var tasks []int
	if flag.NArg() == 0 {
		tasks = []int{3, 6, 9, 12, 15, 18, 60}
	}
	for _, arg := range flag.Args() {
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			log.Fatalf("bad task count %q", arg)
		}
		tasks = append(tasks, n)
	}

	fmt.Printf("topology: %s\n", topo)
	for _, n := range tasks {
		c, err := assign.Count(topo, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d tasks: %s distinct assignments", n, formatBig(c))
		if *raw {
			r, err := assign.RawPlacements(topo, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  (%s labelled placements)", formatBig(r))
		}
		fmt.Println()
	}
}

func formatBig(x *big.Int) string {
	s := x.Text(10)
	if len(s) <= 18 {
		return s
	}
	f := new(big.Float).SetInt(x)
	return fmt.Sprintf("%.4e", f)
}
