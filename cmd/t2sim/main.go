// Command t2sim inspects a single task assignment on the simulated
// UltraSPARC T2 at all three fidelity levels: the analytic steady-state
// solver, the discrete-event queue engine running the real benchmark code,
// and the cycle-approximate strand simulator — plus the hardware-counter
// profile showing which resources throttle the workload.
//
// Usage:
//
//	t2sim [-benchmark IPFwd-L1] [-instances 8] [-scheduler linux|naive|greedy] [-seed 1] [-packets 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("t2sim: ")

	benchmark := flag.String("benchmark", "IPFwd-L1", "benchmark name (see cmd/optassign)")
	instances := flag.Int("instances", 8, "pipeline instances")
	scheduler := flag.String("scheduler", "linux", "assignment policy: linux, naive, greedy")
	seed := flag.Int64("seed", 1, "seed for the naive scheduler")
	packets := flag.Int("packets", 2000, "packets per instance for the two simulators")
	flag.Parse()

	app, err := apps.ByName(*benchmark, netgen.DefaultProfile())
	if err != nil {
		log.Fatal(err)
	}
	tb, err := netdps.NewTestbed(app, *instances)
	if err != nil {
		log.Fatal(err)
	}
	topo := tb.Machine.Topo

	var a assign.Assignment
	switch *scheduler {
	case "linux":
		a, err = sched.LinuxLike{}.Assign(topo, tb.TaskCount())
	case "naive":
		a, err = sched.Naive{Rng: rand.New(rand.NewSource(*seed))}.Assign(topo, tb.TaskCount())
	case "greedy":
		tasks, links := tb.Tasks()
		a, err = sched.GreedyDemand{Machine: tb.Machine, Tasks: tasks, Links: links}.Assign()
	default:
		log.Fatalf("unknown scheduler %q", *scheduler)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s × %d instances, %s scheduler\n", app.Name(), *instances, *scheduler)
	fmt.Printf("assignment: %s\n\n", a)

	analytic, err := tb.MeasureAnalytic(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic steady state:   %11.6g PPS\n", analytic)

	engine, err := tb.MeasureEngine(a, *packets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discrete-event engine:   %11.6g PPS (%d packets/instance, real benchmark code)\n",
		engine.PPS, *packets)

	cyc, err := tb.MeasureCycle(a, *packets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle-level simulator:   %11.6g PPS (%d cycles simulated)\n\n", cyc.TotalPPS, cyc.Cycles)

	prof, err := tb.ProfileAssignment(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hottest shared resources (analytic operating point):")
	prof.Dump(os.Stdout, 8)
}
