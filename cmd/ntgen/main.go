// Command ntgen is the traffic-generator front end (the NTGen role of the
// paper's testbed): it synthesizes the configured packet stream and writes
// it as a pcap capture for inspection with tcpdump/Wireshark, or prints a
// summary of the stream.
//
// Usage:
//
//	ntgen [-n 1000] [-out traffic.pcap] [-rate 1e6] [-flows 4096]
//	      [-zipf 1.2] [-minpay 64] [-maxpay 800] [-tcp 0.8] [-kwrate 0.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"optassign/internal/netgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ntgen: ")

	n := flag.Int("n", 1000, "packets to generate")
	out := flag.String("out", "", "pcap output file (empty: summary only)")
	rate := flag.Float64("rate", 1e6, "timestamp spacing in packets per second")
	flows := flag.Int("flows", 4096, "distinct flows")
	zipf := flag.Float64("zipf", 1.2, "Zipf skew over flows (0 disables)")
	minPay := flag.Int("minpay", 64, "minimum payload bytes")
	maxPay := flag.Int("maxpay", 800, "maximum payload bytes")
	tcp := flag.Float64("tcp", 0.8, "fraction of TCP flows")
	kwRate := flag.Float64("kwrate", 0.1, "keyword injection probability")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	profile := netgen.Profile{
		Flows:       *flows,
		ZipfS:       *zipf,
		PayloadMin:  *minPay,
		PayloadMax:  *maxPay,
		TCPFraction: *tcp,
		Keywords:    netgen.DoSKeywords(),
		KeywordRate: *kwRate,
	}
	gen, err := netgen.NewGenerator(profile, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var writer *netgen.PcapWriter
	var file *os.File
	if *out != "" {
		file, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		writer, err = netgen.NewPcapWriter(file, *rate)
		if err != nil {
			log.Fatal(err)
		}
	}

	var bytes int
	flowsSeen := map[netgen.FlowKey]int{}
	protoCount := map[uint8]int{}
	for i := 0; i < *n; i++ {
		pkt := gen.Next()
		bytes += len(pkt.Raw)
		h, err := pkt.Decode()
		if err != nil {
			log.Fatalf("generated undecodable packet %d: %v", i, err)
		}
		flowsSeen[h.Key()]++
		protoCount[h.Proto]++
		if writer != nil {
			if err := writer.WritePacket(pkt); err != nil {
				log.Fatal(err)
			}
		}
	}
	if file != nil {
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d packets to %s\n", writer.Packets(), *out)
	}

	fmt.Printf("packets: %d, bytes: %d (mean %.1f B)\n", *n, bytes, float64(bytes)/float64(*n))
	fmt.Printf("distinct flows: %d of %d configured\n", len(flowsSeen), *flows)
	fmt.Printf("TCP: %d, UDP: %d\n", protoCount[netgen.ProtoTCP], protoCount[netgen.ProtoUDP])
	top, topCount := netgen.FlowKey{}, 0
	for k, c := range flowsSeen {
		if c > topCount {
			top, topCount = k, c
		}
	}
	fmt.Printf("hottest flow: %s:%d > %s:%d (%d packets, %.1f%%)\n",
		netgen.IPString(top.SrcIP), top.SrcPort, netgen.IPString(top.DstIP), top.DstPort,
		topCount, float64(topCount)/float64(*n)*100)
}
