// Command measured ("measure daemon") serves a testbed over TCP so that a
// controller on another machine can run measurement campaigns against it —
// the two-machine layout of the paper's industrial setup. Here it serves
// the simulated UltraSPARC T2; on real hardware the same protocol would
// front a thread-pinning measurement harness.
//
// Usage:
//
//	measured [-addr :9120] [-benchmark IPFwd-L1] [-instances 8] [-seed 1]
//	         [-read-timeout 5m] [-drain 10s] [-metrics-addr :9121]
//	         [-register controller:9130] [-advertise host:9120]
//	         [-cache] [-cache-size 4096] [-cache-dir DIR]
//
// Drive it with cmd/optassign -connect host:9120, or join a dynamic fleet
// with -register: the server announces itself (topology, task count,
// testbed identity) to the registry hosted by optassign -registry,
// heartbeats for as long as it serves, and re-announces automatically if
// the registry link drops. -advertise is the measurement address the
// controller dials back to verify and use; it defaults to the first -addr
// and must be set explicitly when that is a wildcard like ":9120".
//
// -addr accepts a comma-separated list to serve several listeners from
// one process (e.g. one per NIC, or several loopback ports to exercise a
// client pool). Idle connections are reaped after -read-timeout so dead
// controllers don't leak handlers. SIGINT/SIGTERM shuts down gracefully:
// a registered server first runs the drain handshake — the controller
// stops routing new measurements, in-flight ones finish and commit, the
// registry acknowledges — then live connections drain for up to -drain,
// then the process exits. A drained exit loses zero committed
// measurements.
//
// Memoization: -cache serves structurally duplicate assignments from
// memory server-side, so several controllers (or one controller re-running
// campaigns) share measurements of symmetric assignments. -cache-dir DIR
// (implies -cache) persists the memoized classes to a checksummed
// append-only store in DIR, shared across restarts and across measured
// processes on one host; delete the directory to invalidate it.
//
// Observability: -metrics-addr serves Prometheus text-format metrics at
// /metrics (connections, requests, measurement latency) and a JSON
// health report at /healthz; empty (the default) disables the endpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"optassign/internal/apps"
	"optassign/internal/cas"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/obs"
	"optassign/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("measured: ")

	addr := flag.String("addr", ":9120", "listen address, or a comma-separated list of them")
	benchmark := flag.String("benchmark", "IPFwd-L1", "benchmark name (see cmd/optassign)")
	instances := flag.Int("instances", 8, "pipeline instances")
	seed := flag.Int64("seed", 1, "testbed seed")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "drop a connection idle for this long (0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "how long shutdown waits for live connections to finish")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty disables)")
	register := flag.String("register", "", "join the fleet registry at this address (see optassign -registry; empty disables)")
	advertise := flag.String("advertise", "", "measurement address to advertise to the registry (default: the first -addr)")
	cacheOn := flag.Bool("cache", false, "memoize measurements by canonical assignment class, shared by every connection this server handles")
	cacheSize := flag.Int("cache-size", 4096, "canonical classes kept by -cache before LRU eviction")
	cacheDir := flag.String("cache-dir", "", "persist memoized classes to this directory, shared across restarts and processes (implies -cache; delete the directory to invalidate)")
	flag.Parse()

	app, err := apps.ByName(*benchmark, netgen.DefaultProfile())
	if err != nil {
		log.Fatal(err)
	}
	tb, err := netdps.NewTestbed(app, *instances, netdps.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	if *cacheDir != "" {
		*cacheOn = true
	}
	// One registry serves both the cache metrics and (when enabled) the
	// /metrics endpoint; nil-safe throughout, so no endpoint costs nothing.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	var runner core.Runner = tb
	if *cacheOn {
		c := core.NewCache(*cacheSize, core.NewCacheMetrics(reg))
		if *cacheDir != "" {
			store, serr := cas.Open(*cacheDir)
			if serr != nil {
				log.Fatal(serr)
			}
			defer store.Close()
			c.AttachStore(store)
			fmt.Printf("persistent measurement store at %s: %d classes on disk\n", *cacheDir, store.Len())
		}
		runner = core.NewCachedRunner(tb, c, tb.Identity())
	}
	var listeners []net.Listener
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		l, err := net.Listen("tcp", a)
		if err != nil {
			log.Fatal(err)
		}
		listeners = append(listeners, l)
		fmt.Printf("serving %s (%d tasks on %s) at %s\n",
			app.Name(), tb.TaskCount(), tb.Machine.Topo, l.Addr())
	}
	if len(listeners) == 0 {
		log.Fatal("-addr names no listen address")
	}
	srv := &remote.Server{
		Runner:      runner,
		Topo:        tb.Machine.Topo,
		Tasks:       tb.TaskCount(),
		Name:        app.Name(),
		ReadTimeout: *readTimeout,
	}

	// Observability endpoint: a separate listener so a scraper never
	// competes with the measurement protocol for the main ports.
	var obsSrv *http.Server
	if *metricsAddr != "" {
		srv.Metrics = remote.NewServerMetrics(reg)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		detail := func() any {
			return map[string]any{
				"benchmark": app.Name(),
				"tasks":     tb.TaskCount(),
				"topology":  tb.Machine.Topo.String(),
			}
		}
		obsSrv = &http.Server{Handler: obs.Mux(reg, nil, detail)}
		go obsSrv.Serve(ml)
		fmt.Printf("observability at http://%s/metrics and /healthz\n", ml.Addr())
	}

	// Fleet membership: announce to the registry, heartbeat for life, and
	// keep re-announcing through registry blips.
	var registrant *remote.Registrant
	var regCancel context.CancelFunc
	if *register != "" {
		addrAd := *advertise
		if addrAd == "" {
			addrAd = listeners[0].Addr().String()
		}
		regAddr := *register
		var err error
		registrant, err = remote.NewRegistrant(remote.RegistrantConfig{
			Dial:     func() (net.Conn, error) { return net.Dial("tcp", regAddr) },
			Hello:    remote.Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: app.Name()},
			Addr:     addrAd,
			Identity: tb.Identity(),
		})
		if err != nil {
			log.Fatal(err)
		}
		var regCtx context.Context
		regCtx, regCancel = context.WithCancel(context.Background())
		defer regCancel()
		go func() {
			if err := registrant.Run(regCtx); err != nil && regCtx.Err() == nil {
				// A rejection (identity mismatch, unreachable advertise
				// address) is permanent; the server keeps serving -connect
				// clients, but the operator must know the fleet refused it.
				log.Printf("fleet registration ended: %v", err)
			}
		}()
		fmt.Printf("registering with fleet at %s, advertising %s\n", regAddr, addrAd)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		if registrant != nil {
			// Graceful departure first: after the registry acknowledges the
			// drain, every measurement this server completed is committed
			// controller-side and no new one will arrive.
			fmt.Println("draining from fleet registry")
			dctx, cancel := context.WithTimeout(context.Background(), *drain)
			if err := registrant.Drain(dctx); err != nil {
				log.Printf("fleet drain incomplete: %v", err)
			}
			cancel()
			regCancel()
		}
		fmt.Println("shutting down, draining connections")
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if obsSrv != nil {
			obsSrv.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, len(listeners))
	for _, l := range listeners {
		wg.Add(1)
		go func(l net.Listener) {
			defer wg.Done()
			if err := srv.Serve(l); err != nil {
				errs <- err
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}
}
