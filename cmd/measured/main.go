// Command measured ("measure daemon") serves a testbed over TCP so that a
// controller on another machine can run measurement campaigns against it —
// the two-machine layout of the paper's industrial setup. Here it serves
// the simulated UltraSPARC T2; on real hardware the same protocol would
// front a thread-pinning measurement harness.
//
// Usage:
//
//	measured [-addr :9120] [-benchmark IPFwd-L1] [-instances 8] [-seed 1]
//	         [-read-timeout 5m] [-drain 10s] [-metrics-addr :9121]
//
// Drive it with cmd/optassign -connect host:9120. -addr accepts a
// comma-separated list to serve several listeners from one process (e.g.
// one per NIC, or several loopback ports to exercise a client pool). Idle
// connections are reaped after -read-timeout so dead controllers don't
// leak handlers; SIGINT/SIGTERM drains live connections for up to -drain,
// then exits.
//
// Observability: -metrics-addr serves Prometheus text-format metrics at
// /metrics (connections, requests, measurement latency) and a JSON
// health report at /healthz; empty (the default) disables the endpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"optassign/internal/apps"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/obs"
	"optassign/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("measured: ")

	addr := flag.String("addr", ":9120", "listen address, or a comma-separated list of them")
	benchmark := flag.String("benchmark", "IPFwd-L1", "benchmark name (see cmd/optassign)")
	instances := flag.Int("instances", 8, "pipeline instances")
	seed := flag.Int64("seed", 1, "testbed seed")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "drop a connection idle for this long (0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "how long shutdown waits for live connections to finish")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty disables)")
	flag.Parse()

	app, err := apps.ByName(*benchmark, netgen.DefaultProfile())
	if err != nil {
		log.Fatal(err)
	}
	tb, err := netdps.NewTestbed(app, *instances, netdps.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	var listeners []net.Listener
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		l, err := net.Listen("tcp", a)
		if err != nil {
			log.Fatal(err)
		}
		listeners = append(listeners, l)
		fmt.Printf("serving %s (%d tasks on %s) at %s\n",
			app.Name(), tb.TaskCount(), tb.Machine.Topo, l.Addr())
	}
	if len(listeners) == 0 {
		log.Fatal("-addr names no listen address")
	}
	srv := &remote.Server{
		Runner:      tb,
		Topo:        tb.Machine.Topo,
		Tasks:       tb.TaskCount(),
		Name:        app.Name(),
		ReadTimeout: *readTimeout,
	}

	// Observability endpoint: a separate listener so a scraper never
	// competes with the measurement protocol for the main ports.
	var obsSrv *http.Server
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.Metrics = remote.NewServerMetrics(reg)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		detail := func() any {
			return map[string]any{
				"benchmark": app.Name(),
				"tasks":     tb.TaskCount(),
				"topology":  tb.Machine.Topo.String(),
			}
		}
		obsSrv = &http.Server{Handler: obs.Mux(reg, nil, detail)}
		go obsSrv.Serve(ml)
		fmt.Printf("observability at http://%s/metrics and /healthz\n", ml.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Println("shutting down, draining connections")
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if obsSrv != nil {
			obsSrv.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, len(listeners))
	for _, l := range listeners {
		wg.Add(1)
		go func(l net.Listener) {
			defer wg.Done()
			if err := srv.Serve(l); err != nil {
				errs <- err
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}
}
