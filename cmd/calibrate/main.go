// Command calibrate runs the simulation-based calibration harness for the
// statistical machinery: synthetic populations with an analytically known
// optimum are pushed through the full POT/GPD/Wilks pipeline and the
// iterative algorithm over thousands of seeded replications, and the
// empirical behaviour is compared with the method's claims — confidence
// intervals should cover the true optimum at their nominal rate, and
// stopped-satisfied campaigns should realize a loss within the promised
// bound.
//
// Usage:
//
//	calibrate [-scenario gpd|mixture|discrete|iter|search|all]
//	          [-replications 2000] [-n 0] [-seed 1] [-loss 5]
//	          [-fractions 0.05,0.1,0.2] [-workers 0] [-json]
//	          [-min-coverage 0] [-search-speedup 0]
//	          [-metrics-addr :9131]
//
// Scenarios: "gpd" samples an exactly-GPD population (threshold-stable, the
// sharpest test of the estimator); "mixture" a truncated power-function
// mixture (GPD only in the limit — a model-misspecification probe);
// "discrete" a finite assignment-class population enumerated from the
// simulated testbed (heavy ties, the paper's actual sampling process);
// "iter" runs full §5.3 iterative campaigns against the discrete population
// and checks the stopping promise; "search" runs the head-to-head search
// strategy study — every built-in strategy drives full campaigns against
// the same known-optimum population (does a smarter sampler reach the same
// loss promise with fewer measurements?) and every tail-safe strategy is
// coverage-calibrated on a continuous known-endpoint landscape; "all" runs
// everything except "search" (ask for it explicitly — it is a study of the
// search layer, not of the estimator).
//
// -n 0 uses each scenario's recommended sample size. -fractions runs the
// threshold-sensitivity sweep over the given MaxExceedFraction caps.
// -min-coverage F exits with status 2 if any coverage scenario lands below
// F — the CI regression-gate hook. For -scenario search it also bounds the
// per-strategy coverage band symmetrically about the nominal 0.95 (floor
// 0.93 ⇒ band [0.93, 0.97]). -search-speedup F exits with status 2 unless
// at least one tail-safe non-uniform strategy reaches the promise with a
// fraction F fewer measurements than uniform and zero violations — the
// strategy efficiency gate. -json replaces the text report with one JSON
// document on stdout. Every run is deterministic in (-seed, -replications,
// -n): worker count never changes results. The search scenario pins its
// own replication counts, seed, and promise (the CI gate numbers) unless
// -replications, -seed, or -loss are given explicitly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"optassign/internal/calibrate"
	"optassign/internal/obs"
)

// output is the JSON shape of a full run.
type output struct {
	Seed        int64                        `json:"seed"`
	Coverage    []calibrate.Result           `json:"coverage,omitempty"`
	Sensitivity []calibrate.Result           `json:"sensitivity,omitempty"`
	Iterative   *calibrate.IterResult        `json:"iterative,omitempty"`
	Search      *calibrate.SearchStudyResult `json:"search,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")

	scenario := flag.String("scenario", "gpd", "gpd, mixture, discrete, iter, search, or all (all = everything but search)")
	replications := flag.Int("replications", 2000, "independent synthetic campaigns per scenario")
	n := flag.Int("n", 0, "sample size per replication (0 = scenario default)")
	seed := flag.Int64("seed", 1, "base seed; replication r uses a stream derived from it")
	loss := flag.Float64("loss", 5, "promised acceptable loss for the iter scenario, percent")
	fractionsFlag := flag.String("fractions", "", "comma-separated MaxExceedFraction caps for a threshold-sensitivity sweep (empty disables)")
	workers := flag.Int("workers", 0, "concurrent replications (0 = GOMAXPROCS); results are identical for any value")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of text")
	minCoverage := flag.Float64("min-coverage", 0, "exit 2 if any coverage scenario falls below this floor (0 disables); for -scenario search the band is symmetric about 0.95")
	searchSpeedup := flag.Float64("search-speedup", 0, "with -scenario search: exit 2 unless a tail-safe strategy beats uniform's measurement count by this fraction with zero violations (0 disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address while calibrating (empty disables)")
	flag.Parse()

	var fractions []float64
	for _, f := range strings.Split(*fractionsFlag, ",") {
		if f = strings.TrimSpace(f); f != "" {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				log.Fatalf("-fractions: %v", err)
			}
			fractions = append(fractions, v)
		}
	}

	var reg *obs.Registry
	var metrics *calibrate.Metrics
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		metrics = calibrate.NewMetrics(reg)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		detail := func() any {
			return map[string]any{"scenario": *scenario, "replications": *replications, "seed": *seed}
		}
		go http.Serve(ml, obs.Mux(reg, nil, detail))
		defer ml.Close()
		fmt.Fprintf(os.Stderr, "observability at http://%s/metrics and /healthz\n", ml.Addr())
	}

	var names []string
	runIter, runSearch := false, false
	switch *scenario {
	case "all":
		names = calibrate.ScenarioNames
		runIter = true
	case "iter":
		runIter = true
	case "search":
		runSearch = true
	default:
		names = []string{*scenario}
	}

	// The search study pins its own gate configuration (seed, replication
	// counts, promise); an explicitly-set flag overrides the pin.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	out := output{Seed: *seed}
	text := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}

	coverageFloorBroken := false
	for _, name := range names {
		sc, err := calibrate.BuiltinScenario(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := calibrate.Config{
			Replications: *replications,
			N:            sc.N,
			Seed:         *seed,
			POT:          sc.POT,
			Workers:      *workers,
			Metrics:      metrics,
		}
		if *n > 0 {
			cfg.N = *n
		}
		res, err := calibrate.Run(cfg, sc.Pop)
		if err != nil {
			log.Fatal(err)
		}
		out.Coverage = append(out.Coverage, res)
		text("=== coverage: %s ===\n", name)
		if !*jsonOut {
			calibrate.PrintResult(os.Stdout, res)
		}
		if *minCoverage > 0 && res.Coverage < *minCoverage {
			coverageFloorBroken = true
			text("!! coverage %.4f below the -min-coverage floor %.4f\n", res.Coverage, *minCoverage)
		}
		if len(fractions) > 0 {
			sens, err := calibrate.Sensitivity(cfg, sc.Pop, fractions)
			if err != nil {
				log.Fatal(err)
			}
			out.Sensitivity = append(out.Sensitivity, sens...)
			text("--- threshold sensitivity: %s ---\n", name)
			if !*jsonOut {
				for _, s := range sens {
					fmt.Printf("  cap %-24s coverage %.4f (%d/%d), bias %+.3f%%, %d unbounded\n",
						s.Scenario[strings.Index(s.Scenario, "@")+1:], s.Coverage, s.Covered, s.Analyzed, s.MeanBiasPct, s.UnboundedHi)
				}
			}
		}
		text("\n")
	}

	if runIter {
		sc, err := calibrate.BuiltinScenario("discrete")
		if err != nil {
			log.Fatal(err)
		}
		pop := sc.Pop.(*calibrate.DiscretePopulation)
		iterReps := *replications
		if *scenario == "all" && iterReps > 200 {
			// Each iterative replication is a full campaign (hundreds of
			// analyses); "all" trims it to keep the combined run bounded.
			// Ask for -scenario iter explicitly to control the count.
			iterReps = 200
		}
		res, err := calibrate.RunIterative(calibrate.IterConfig{
			Replications:  iterReps,
			AcceptLossPct: *loss,
			Seed:          *seed,
			Workers:       *workers,
			Metrics:       metrics,
		}, pop)
		if err != nil {
			log.Fatal(err)
		}
		out.Iterative = &res
		text("=== stopping rule: iterative algorithm ===\n")
		if !*jsonOut {
			calibrate.PrintIterResult(os.Stdout, res)
		}
	}

	if runSearch {
		cfg, effPop, covPop, err := calibrate.BuiltinSearchStudy()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Iter.Workers = *workers
		cfg.Iter.Metrics = metrics
		cfg.Coverage.Workers = *workers
		if explicit["replications"] {
			cfg.Iter.Replications = *replications
			cfg.Coverage.Replications = *replications
		}
		if explicit["seed"] {
			cfg.Iter.Seed = *seed
			cfg.Coverage.Seed = *seed
		}
		if explicit["loss"] {
			cfg.Iter.AcceptLossPct = *loss
		}
		res, err := calibrate.RunSearchStudy(cfg, effPop, covPop)
		if err != nil {
			log.Fatal(err)
		}
		out.Search = &res
		text("=== search strategies: efficiency and coverage ===\n")
		if !*jsonOut {
			calibrate.PrintSearchStudy(os.Stdout, res)
		}
		if *searchSpeedup > 0 && res.BestSavingsPct < *searchSpeedup*100 {
			coverageFloorBroken = true
			text("!! best strategy savings %.1f%% below the -search-speedup bar %.1f%%\n",
				res.BestSavingsPct, *searchSpeedup*100)
		}
		if *minCoverage > 0 {
			// The 1e-9 slack absorbs float representation error at the band
			// edges (e.g. 291/300 vs an arithmetically-derived 0.97).
			hi := 0.95 + (0.95 - *minCoverage)
			for _, cr := range res.Coverage {
				if cr.Coverage < *minCoverage-1e-9 || cr.Coverage > hi+1e-9 {
					coverageFloorBroken = true
					text("!! strategy %s coverage %.4f outside the [%.4f, %.4f] band\n",
						cr.Strategy, cr.Coverage, *minCoverage, hi)
				}
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	}
	if coverageFloorBroken {
		os.Exit(2)
	}
}
