// Command calibrate runs the simulation-based calibration harness for the
// statistical machinery: synthetic populations with an analytically known
// optimum are pushed through the full POT/GPD/Wilks pipeline and the
// iterative algorithm over thousands of seeded replications, and the
// empirical behaviour is compared with the method's claims — confidence
// intervals should cover the true optimum at their nominal rate, and
// stopped-satisfied campaigns should realize a loss within the promised
// bound.
//
// Usage:
//
//	calibrate [-scenario gpd|mixture|discrete|iter|all] [-replications 2000]
//	          [-n 0] [-seed 1] [-loss 5] [-fractions 0.05,0.1,0.2]
//	          [-workers 0] [-json] [-min-coverage 0]
//	          [-metrics-addr :9131]
//
// Scenarios: "gpd" samples an exactly-GPD population (threshold-stable, the
// sharpest test of the estimator); "mixture" a truncated power-function
// mixture (GPD only in the limit — a model-misspecification probe);
// "discrete" a finite assignment-class population enumerated from the
// simulated testbed (heavy ties, the paper's actual sampling process);
// "iter" runs full §5.3 iterative campaigns against the discrete population
// and checks the stopping promise; "all" runs everything.
//
// -n 0 uses each scenario's recommended sample size. -fractions runs the
// threshold-sensitivity sweep over the given MaxExceedFraction caps.
// -min-coverage F exits with status 2 if any coverage scenario lands below
// F — the CI regression-gate hook. -json replaces the text report with one
// JSON document on stdout. Every run is deterministic in (-seed,
// -replications, -n): worker count never changes results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"optassign/internal/calibrate"
	"optassign/internal/obs"
)

// output is the JSON shape of a full run.
type output struct {
	Seed        int64                 `json:"seed"`
	Coverage    []calibrate.Result    `json:"coverage,omitempty"`
	Sensitivity []calibrate.Result    `json:"sensitivity,omitempty"`
	Iterative   *calibrate.IterResult `json:"iterative,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")

	scenario := flag.String("scenario", "gpd", "gpd, mixture, discrete, iter, or all")
	replications := flag.Int("replications", 2000, "independent synthetic campaigns per scenario")
	n := flag.Int("n", 0, "sample size per replication (0 = scenario default)")
	seed := flag.Int64("seed", 1, "base seed; replication r uses a stream derived from it")
	loss := flag.Float64("loss", 5, "promised acceptable loss for the iter scenario, percent")
	fractionsFlag := flag.String("fractions", "", "comma-separated MaxExceedFraction caps for a threshold-sensitivity sweep (empty disables)")
	workers := flag.Int("workers", 0, "concurrent replications (0 = GOMAXPROCS); results are identical for any value")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of text")
	minCoverage := flag.Float64("min-coverage", 0, "exit 2 if any coverage scenario falls below this floor (0 disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address while calibrating (empty disables)")
	flag.Parse()

	var fractions []float64
	for _, f := range strings.Split(*fractionsFlag, ",") {
		if f = strings.TrimSpace(f); f != "" {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				log.Fatalf("-fractions: %v", err)
			}
			fractions = append(fractions, v)
		}
	}

	var reg *obs.Registry
	var metrics *calibrate.Metrics
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		metrics = calibrate.NewMetrics(reg)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		detail := func() any {
			return map[string]any{"scenario": *scenario, "replications": *replications, "seed": *seed}
		}
		go http.Serve(ml, obs.Mux(reg, nil, detail))
		defer ml.Close()
		fmt.Fprintf(os.Stderr, "observability at http://%s/metrics and /healthz\n", ml.Addr())
	}

	var names []string
	runIter := false
	switch *scenario {
	case "all":
		names = calibrate.ScenarioNames
		runIter = true
	case "iter":
		runIter = true
	default:
		names = []string{*scenario}
	}

	out := output{Seed: *seed}
	text := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}

	coverageFloorBroken := false
	for _, name := range names {
		sc, err := calibrate.BuiltinScenario(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := calibrate.Config{
			Replications: *replications,
			N:            sc.N,
			Seed:         *seed,
			POT:          sc.POT,
			Workers:      *workers,
			Metrics:      metrics,
		}
		if *n > 0 {
			cfg.N = *n
		}
		res, err := calibrate.Run(cfg, sc.Pop)
		if err != nil {
			log.Fatal(err)
		}
		out.Coverage = append(out.Coverage, res)
		text("=== coverage: %s ===\n", name)
		if !*jsonOut {
			calibrate.PrintResult(os.Stdout, res)
		}
		if *minCoverage > 0 && res.Coverage < *minCoverage {
			coverageFloorBroken = true
			text("!! coverage %.4f below the -min-coverage floor %.4f\n", res.Coverage, *minCoverage)
		}
		if len(fractions) > 0 {
			sens, err := calibrate.Sensitivity(cfg, sc.Pop, fractions)
			if err != nil {
				log.Fatal(err)
			}
			out.Sensitivity = append(out.Sensitivity, sens...)
			text("--- threshold sensitivity: %s ---\n", name)
			if !*jsonOut {
				for _, s := range sens {
					fmt.Printf("  cap %-24s coverage %.4f (%d/%d), bias %+.3f%%, %d unbounded\n",
						s.Scenario[strings.Index(s.Scenario, "@")+1:], s.Coverage, s.Covered, s.Analyzed, s.MeanBiasPct, s.UnboundedHi)
				}
			}
		}
		text("\n")
	}

	if runIter {
		sc, err := calibrate.BuiltinScenario("discrete")
		if err != nil {
			log.Fatal(err)
		}
		pop := sc.Pop.(*calibrate.DiscretePopulation)
		iterReps := *replications
		if *scenario == "all" && iterReps > 200 {
			// Each iterative replication is a full campaign (hundreds of
			// analyses); "all" trims it to keep the combined run bounded.
			// Ask for -scenario iter explicitly to control the count.
			iterReps = 200
		}
		res, err := calibrate.RunIterative(calibrate.IterConfig{
			Replications:  iterReps,
			AcceptLossPct: *loss,
			Seed:          *seed,
			Workers:       *workers,
			Metrics:       metrics,
		}, pop)
		if err != nil {
			log.Fatal(err)
		}
		out.Iterative = &res
		text("=== stopping rule: iterative algorithm ===\n")
		if !*jsonOut {
			calibrate.PrintIterResult(os.Stdout, res)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	}
	if coverageFloorBroken {
		os.Exit(2)
	}
}
