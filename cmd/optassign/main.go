// Command optassign runs the paper's iterative statistical task-assignment
// algorithm (§5.3) against the simulated UltraSPARC T2 testbed: it keeps
// executing random assignments of the chosen benchmark until the best one
// found is — with 0.95 confidence — within the acceptable loss of the
// estimated optimal system performance.
//
// Usage:
//
//	optassign [-benchmark IPFwd-L1] [-instances 8] [-loss 2.5]
//	          [-ninit 1000] [-ndelta 100] [-max 12000] [-seed 1] [-v]
//	          [-strategy uniform] [-strategy-params k=v,...]
//	          [-timeout 30s] [-retries 3] [-journal run.journal] [-resume]
//	          [-workers 8] [-connect host1:7070,host2:7070]
//	          [-registry :9140] [-min-servers 1]
//	          [-cache] [-cache-size 4096] [-cache-dir DIR] [-batch 64]
//	          [-progress] [-metrics-addr :9130]
//	          [-server http://host:9160 -submit ID | -query EXPR]
//
// Search strategy: -strategy picks how assignment draws are generated —
// uniform (the paper's i.i.d. sampler, the default), stratified (spreads
// draws across canonical equivalence classes), greedy (hill-climbs from
// the incumbent best), or anneal (simulated annealing). Uniform and
// stratified are tail-safe: every draw feeds the EVT optimum estimate.
// Greedy marks its adaptive moves as exploration, excluded from the fit
// so the confidence interval stays calibrated; anneal's biased sample
// makes the reported optimum estimate advisory only. The strategy's
// canonical spec is stamped into the journal header, and -resume refuses
// to continue a journal under a different strategy.
//
// Fault tolerance: -retries/-timeout wrap the measurement source in a
// resilient runner (retry with backoff, quarantine after the budget);
// -journal write-ahead logs every measurement so -resume restarts a killed
// campaign from its checkpoint, re-measuring nothing. Ctrl-C stops the
// campaign cleanly at a measurement boundary.
//
// Parallelism: -workers N measures N assignments concurrently, and
// -connect accepts a comma-separated server list to fan the campaign out
// across several testbeds (a failing server is benched and its work moves
// to the others). The measured assignment sequence, the journal contents
// and the final result are byte-identical to a serial run with the same
// seed, so worker count — and even serial vs parallel — may change freely
// across a -resume. To open several connections to one server, repeat its
// address.
//
// Fleet mode: -registry hosts a membership registry instead of dialing a
// fixed list — measurement servers started with measured -register join
// by announcing themselves (the controller dials back to verify their
// identity), heartbeat while they serve, and leave via the graceful drain
// handshake on SIGTERM. The campaign starts once -min-servers have
// joined; after that, members may come and go freely — the journal and
// result stay byte-identical to a serial run regardless.
//
// Memoization: -cache serves structurally duplicate assignments (same
// canonical form under the hardware symmetries, hence the same resource
// sharing and the same performance) from memory instead of re-measuring,
// keeping at most -cache-size classes. Results and journal bytes are
// identical with the cache on or off; disable it on testbeds whose noise
// should be sampled independently per measurement. -cache-dir DIR (which
// implies -cache) additionally persists every measured class to an
// append-only, checksummed store in DIR, shared across runs and across
// concurrent processes via file locking: a repeated or resumed campaign
// re-measures nothing it has ever measured before. Delete the directory
// to invalidate the store (after changing the testbed model, say).
//
// Batching: -batch N measures draws in chunks of N on the local testbed —
// each chunk is probed against the cache at once and only the unique
// still-unmeasured classes are evaluated, core-sharded across the CPUs.
// Results and journal bytes stay byte-identical to a serial run; only the
// wall-clock drops. It is mutually exclusive with -workers and with
// remote measurement (which parallelize with -workers instead).
//
// Service mode: -server URL turns the command into a client of a running
// campaignd instance instead of measuring anything locally. -submit ID
// posts a campaign built from the usual -benchmark/-loss/-strategy flags
// and follows its convergence line to a terminal state; -query EXPR runs
// a predicate query (e.g. 'benchmark=IPFwd-L1,satisfied=true') over the
// service's promoted result table — answered from the table's indexes,
// without opening any journal.
//
// Observability: -progress keeps a live status line on stderr (sample
// count, best observed, ÛPB and its CI, the convergence gap, retries and
// worker utilization); -metrics-addr serves the same state as Prometheus
// metrics at /metrics plus a JSON /healthz while the campaign runs.
// Instrumentation only observes — results and journal bytes are
// identical with it on or off.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/campaign"
	"optassign/internal/cas"
	"optassign/internal/coord"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/obs"
	"optassign/internal/remote"
	"optassign/internal/search"
	"optassign/internal/t2"
)

// progressPrinter renders the campaign's "round" events as a live status
// line on stderr, augmented with retry counts and worker utilization read
// from the metric bundles. Only "round" events mutate its state, and those
// arrive from the single iterate loop, so Emit needs no locking.
type progressPrinter struct {
	out     io.Writer
	start   time.Time
	workers int
	resm    *core.ResilientMetrics
	poolm   *core.PoolMetrics
	cachem  *core.CacheMetrics
	streamm *obs.StreamMetrics
	last    int // previous line length, for overwrite padding
}

// Emit implements obs.EventSink.
func (p *progressPrinter) Emit(e obs.Event) {
	if e.Name != "round" {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "round %v: n=%v best=%.6g", e.Field("round"), e.Field("samples"), e.Field("best"))
	if tu, _ := e.Field("tail_unbounded").(bool); tu {
		b.WriteString(" tail unbounded, sampling more")
	} else {
		// The live converging bound: the streaming refit's point estimate
		// with its half-width — "upb=X ±Y" narrows round over round as the
		// campaign converges. The half-width is omitted while the upper
		// bound is unbounded (the CI shows the honest [lo, +Inf]).
		upb, _ := e.Field("upb").(float64)
		lo, _ := e.Field("upb_lo").(float64)
		hi, _ := e.Field("upb_hi").(float64)
		fmt.Fprintf(&b, " upb=%.6g", upb)
		if !math.IsInf(hi, 1) {
			fmt.Fprintf(&b, " ±%.3g", (hi-lo)/2)
		}
		fmt.Fprintf(&b, " CI=[%.6g, %.6g] gap=%.2f%%", lo, hi, e.Field("headroom_hi_pct"))
	}
	if p.streamm != nil {
		if refits := p.streamm.RefitCount.Value(); refits > 0 {
			fmt.Fprintf(&b, " tail=%.0f refits=%.0f", p.streamm.TailExceedances.Value(), refits)
		}
	}
	if q, ok := e.Field("quarantined").(int); ok && q > 0 {
		fmt.Fprintf(&b, " quarantined=%d", q)
	}
	if p.resm != nil {
		if r := p.resm.Retries.Value(); r > 0 {
			fmt.Fprintf(&b, " retries=%.0f", r)
		}
	}
	if p.cachem != nil {
		if h, m := p.cachem.Hits.Value(), p.cachem.Misses.Value(); h+m > 0 {
			fmt.Fprintf(&b, " cache=%.0f%%", 100*h/(h+m))
		}
	}
	if p.poolm != nil && p.workers > 1 {
		busy := 0.0
		for _, c := range p.poolm.BusySeconds {
			busy += c.Value()
		}
		if elapsed := time.Since(p.start).Seconds(); elapsed > 0 {
			fmt.Fprintf(&b, " util=%.0f%%", 100*busy/(elapsed*float64(p.workers)))
		}
	}
	line := b.String()
	pad := p.last - len(line)
	if pad < 0 {
		pad = 0
	}
	p.last = len(line)
	fmt.Fprintf(p.out, "\r%s%s", line, strings.Repeat(" ", pad))
}

// done terminates the live line so regular output starts on a fresh one.
func (p *progressPrinter) done() {
	if p != nil && p.last > 0 {
		fmt.Fprintln(p.out)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("optassign: ")

	benchmark := flag.String("benchmark", "IPFwd-L1",
		"one of Aho-Corasick, IPFwd-L1, IPFwd-Mem, Packet-analyzer, Stateful, IPFwd-intadd, IPFwd-intmul")
	instances := flag.Int("instances", 8, "pipeline instances (3 threads each)")
	loss := flag.Float64("loss", 2.5, "acceptable performance loss vs the estimated optimum, percent")
	ninit := flag.Int("ninit", 1000, "initial sample size")
	ndelta := flag.Int("ndelta", 100, "sample increment per iteration")
	maxSamples := flag.Int("max", 12000, "sample budget")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print every iteration")
	record := flag.String("record", "", "write every measurement to this campaign file (JSON lines)")
	connect := flag.String("connect", "", "measure on remote testbeds served by cmd/measured: one address or a comma-separated pool")
	registry := flag.String("registry", "", "host a fleet registry on this address and measure on servers that register with it (see measured -register)")
	minServers := flag.Int("min-servers", 1, "with -registry, wait for this many registered servers before starting the campaign")
	workers := flag.Int("workers", 0, "concurrent measurements (0 = one per remote server, else serial); any value yields results identical to a serial run")
	timeout := flag.Duration("timeout", 0, "per-measurement timeout (0 disables)")
	retries := flag.Int("retries", 0, "retries per measurement before quarantining it (0 disables the resilient wrapper unless -timeout is set)")
	journalPath := flag.String("journal", "", "write-ahead journal file: every measurement is persisted as it completes")
	resume := flag.Bool("resume", false, "resume the campaign from the -journal file instead of starting over")
	cacheOn := flag.Bool("cache", false, "memoize measurements by canonical assignment class: symmetric assignments (identical resource sharing) share one testbed run")
	cacheSize := flag.Int("cache-size", 4096, "canonical classes kept by -cache before LRU eviction")
	cacheDir := flag.String("cache-dir", "", "persist memoized classes to this directory, shared across runs and processes (implies -cache; delete the directory to invalidate)")
	batchSize := flag.Int("batch", 0, "measure draws in core-sharded batches of this size on the local testbed (0 disables; mutually exclusive with -workers and remote measurement)")
	progress := flag.Bool("progress", false, "keep a live status line on stderr as the campaign converges")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address while the campaign runs (empty disables)")
	strategy := flag.String("strategy", "uniform",
		"search strategy for assignment draws: "+strings.Join(search.Names, ", ")+" (only uniform and stratified keep the tail estimate calibrated)")
	strategyParams := flag.String("strategy-params", "", "strategy parameters as key=value pairs, comma-separated (e.g. init=200,explore=0.2)")
	server := flag.String("server", "", "campaignd base URL (e.g. http://host:9160): run as a client of the campaign service instead of measuring locally")
	submit := flag.String("submit", "", "with -server, submit a campaign under this id built from the -benchmark/-loss/... flags and follow it to completion")
	query := flag.String("query", "", "with -server, run this predicate query over the service's finished campaigns (e.g. 'benchmark=IPFwd-L1,satisfied=true')")
	flag.Parse()

	if *server != "" {
		runClient(*server, *submit, *query, coord.Spec{
			ID:             *submit,
			Benchmark:      *benchmark,
			Instances:      *instances,
			LossPct:        *loss,
			Ninit:          *ninit,
			Ndelta:         *ndelta,
			MaxSamples:     *maxSamples,
			Seed:           *seed,
			Strategy:       *strategy,
			StrategyParams: *strategyParams,
		})
		return
	}
	if *submit != "" || *query != "" {
		log.Fatal("-submit and -query need -server")
	}

	sparams, err := search.ParseParams(*strategyParams)
	if err != nil {
		log.Fatal(err)
	}
	// Validate the (name, params) combination before any servers are
	// dialed; the real instance is built later, once the metrics registry
	// exists. The canonical spec goes into the journal header so -resume
	// can refuse a strategy switch.
	if _, err := search.New(*strategy, sparams, nil); err != nil {
		log.Fatal(err)
	}
	strategySpec := search.Spec(*strategy, sparams)

	if *resume && *journalPath == "" {
		log.Fatal("-resume needs -journal")
	}
	if *registry != "" && *connect != "" {
		log.Fatal("-registry and -connect are mutually exclusive: a fleet is either dynamic or a static list")
	}
	if *batchSize > 0 {
		if *workers > 1 {
			log.Fatal("-batch and -workers are mutually exclusive: the batch path already shards across cores")
		}
		if *connect != "" || *registry != "" {
			log.Fatal("-batch measures on the local testbed; remote testbeds parallelize with -workers instead")
		}
	}
	if *cacheDir != "" {
		*cacheOn = true
	}

	var addrs []string
	for _, a := range strings.Split(*connect, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	// Observability: one registry feeds both the -progress status line and
	// the -metrics-addr scrape endpoint. Everything below passes events
	// and metric bundles down as nil when neither is requested, so the
	// uninstrumented campaign pays nothing.
	var reg *obs.Registry
	if *progress || *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	var prog *progressPrinter
	var events obs.EventSink
	if *progress {
		prog = &progressPrinter{out: os.Stderr, start: time.Now()}
		events = prog
	}

	var (
		runner   core.ContextRunner
		topo     t2.Topology
		tasks    int
		name     string
		identity string // cache identity of the measurement source
		poolSize int    // pooled servers at campaign start (0 = not pooled)
	)
	switch {
	case *registry != "":
		// Dynamic fleet: host the registry, let servers announce and join,
		// start once enough have been identity-verified into the pool.
		// Members keep joining and leaving while the campaign runs.
		pool := remote.NewPool(remote.PoolConfig{
			Client:  remote.ClientConfig{Events: events, Metrics: remote.NewClientMetrics(reg)},
			Events:  events,
			Metrics: remote.NewPoolMetrics(reg),
		})
		defer pool.Close()
		fleet := remote.NewRegistry(pool, remote.RegistryConfig{
			Events:  events,
			Metrics: remote.NewMembershipMetrics(reg),
		})
		l, err := net.Listen("tcp", *registry)
		if err != nil {
			log.Fatal(err)
		}
		go fleet.Serve(l)
		defer fleet.Close()
		fmt.Printf("fleet registry at %s; waiting for %d server(s) (measured -register %s)\n",
			l.Addr(), *minServers, l.Addr())
		if err := pool.WaitReady(context.Background(), *minServers); err != nil {
			log.Fatal(err)
		}
		runner, topo, tasks, name = pool, pool.Topology(), pool.Tasks(), pool.Hello().Name
		identity = fmt.Sprintf("remote|%s|%d|s%d", name, tasks, *seed)
		poolSize = pool.Size()
		fmt.Printf("fleet ready: %d server(s), %d tasks on %s\n", poolSize, tasks, topo)
	case len(addrs) > 1:
		pool, err := remote.DialPool(addrs, remote.PoolConfig{
			Client:  remote.ClientConfig{Events: events, Metrics: remote.NewClientMetrics(reg)},
			Events:  events,
			Metrics: remote.NewPoolMetrics(reg),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		runner, topo, tasks, name = pool, pool.Topology(), pool.Tasks(), pool.Hello().Name
		identity = fmt.Sprintf("remote|%s|%d|s%d", name, tasks, *seed)
		poolSize = pool.Size()
		fmt.Printf("remote testbed pool: %d servers, %d tasks on %s\n", pool.Size(), tasks, topo)
	case len(addrs) == 1:
		addr := addrs[0]
		client, err := remote.DialConfig(remote.ClientConfig{
			Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Events:  events,
			Metrics: remote.NewClientMetrics(reg),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		runner, topo, tasks, name = client, client.Topology(), client.Tasks(), client.Hello().Name
		identity = fmt.Sprintf("remote|%s|%d|s%d", name, tasks, *seed)
		fmt.Printf("remote testbed %q at %s: %d tasks on %s\n", name, addrs[0], tasks, topo)
	default:
		app, err := apps.ByName(*benchmark, netgen.DefaultProfile())
		if err != nil {
			log.Fatal(err)
		}
		tb, err := netdps.NewTestbed(app, *instances, netdps.WithSeed(*seed))
		if err != nil {
			log.Fatal(err)
		}
		runner, topo, tasks, name = core.AsContextRunner(tb), tb.Machine.Topo, tb.TaskCount(), app.Name()
		identity = tb.Identity()
		fmt.Printf("benchmark %s: %d instances (%d tasks) on %s\n", name, *instances, tasks, topo)
	}

	// The scrape endpoint starts before the campaign so a dashboard sees
	// the very first round land.
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		detail := func() any {
			return map[string]any{"benchmark": name, "tasks": tasks, "topology": topo.String()}
		}
		go http.Serve(ml, obs.Mux(reg, nil, detail))
		defer ml.Close()
		fmt.Printf("observability at http://%s/metrics and /healthz\n", ml.Addr())
	}

	cfg := core.IterConfig{
		Topo:          topo,
		Tasks:         tasks,
		AcceptLossPct: *loss,
		Ninit:         *ninit,
		Ndelta:        *ndelta,
		MaxSamples:    *maxSamples,
		Seed:          *seed,
		Events:        events,
		Metrics:       core.NewIterMetrics(reg),
		StreamMetrics: obs.NewStreamMetrics(reg),
	}
	if prog != nil {
		prog.streamm = cfg.StreamMetrics
	}

	// Search strategy: the default uniform draw keeps cfg.Strategy nil so
	// the campaign takes the legacy sampler path (and its journals stay
	// headerless, readable by older builds). Any explicit non-uniform
	// choice is constructed here, instrumented into the same registry.
	if strategySpec != "" {
		sm := search.NewMetrics(reg, *strategy)
		strat, serr := search.New(*strategy, sparams, sm)
		if serr != nil {
			log.Fatal(serr)
		}
		cfg.Strategy = strat
		cfg.SearchMetrics = sm
		if !strat.TailSafe() {
			fmt.Printf("note: strategy %s biases the sample toward its incumbent; the optimum estimate is fit on i.i.d. draws only\n", strat.Name())
		}
		fmt.Printf("search strategy: %s\n", strategySpec)
	}

	// Resilience layer: retry transient failures with backoff, quarantine
	// the incurable instead of aborting the campaign.
	if *retries > 0 || *timeout > 0 {
		rcfg := core.ResilientConfig{
			MaxAttempts: *retries + 1,
			Timeout:     *timeout,
			Seed:        *seed,
			Events:      events,
			Metrics:     core.NewResilientMetrics(reg),
		}
		if *verbose {
			rcfg.OnRetry = func(a assign.Assignment, attempt int, err error) {
				log.Printf("retrying %s (attempt %d failed: %v)", a, attempt, err)
			}
		}
		if prog != nil {
			prog.resm = rcfg.Metrics
		}
		runner = core.NewResilientRunner(core.AsRunner(runner), rcfg)
	}

	// Measurement cache: the paper's symmetry argument (performance depends
	// only on which tasks share a pipe/core/chip) makes structurally
	// equivalent assignments interchangeable, so duplicates in the random
	// sample are served from memory instead of re-running the testbed. The
	// cache sits inside journaling — every draw, hit or miss, is still
	// journaled — and single-flight keeps concurrent workers from measuring
	// one class twice, so journal bytes are identical with -cache on or off.
	// With -cache-dir, a persistent content-addressed store backs the LRU
	// as a second tier: classes evicted from memory — or measured by a
	// previous run, or by another process sharing the directory — are
	// served from disk instead of the testbed.
	var cached *core.CachedRunner
	if *cacheOn {
		cm := core.NewCacheMetrics(reg)
		c := core.NewCache(*cacheSize, cm)
		if *cacheDir != "" {
			store, serr := cas.Open(*cacheDir)
			if serr != nil {
				log.Fatal(serr)
			}
			defer store.Close()
			c.AttachStore(store)
			fmt.Printf("persistent measurement store at %s: %d classes on disk\n", *cacheDir, store.Len())
		}
		cached = core.NewCachedContextRunner(runner, c, identity)
		runner = cached
		if prog != nil {
			prog.cachem = cm
		}
	}

	// Write-ahead journal: every completed measurement hits disk before
	// the next one starts, so a killed campaign resumes from where it was.
	var j *campaign.Journal
	if *journalPath != "" {
		h := campaign.JournalHeader{Benchmark: name, Topo: topo, Tasks: tasks, Seed: *seed, Strategy: strategySpec}
		var err error
		if *resume {
			var st *campaign.JournalState
			j, st, err = campaign.ResumeJournal(*journalPath, h)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Resume = st.Results
			cfg.ResumeDraws = st.Draws
			// Outcome-driven strategies rebuild their internal state by
			// replaying the journaled draw log; uniform ignores it.
			cfg.ResumeLog = st.Log
			fmt.Printf("resuming from %s: %d measurements recovered (%d quarantined)\n",
				*journalPath, len(st.Results), st.Quarantined)
			// The estimator checkpoint restores the streaming tail state
			// alongside the journal; its hash is verified against the
			// replayed sample before it is trusted. Absent (pre-streaming
			// journal, or killed before the first refit) the state is
			// rebuilt from the replay.
			ckpt, cerr := campaign.LoadEstimatorCheckpoint(campaign.EstimatorCheckpointPath(*journalPath))
			if cerr != nil {
				log.Fatal(cerr)
			}
			if ckpt != nil {
				cfg.StreamCheckpoint = ckpt
				fmt.Printf("restored estimator checkpoint: %d tail observations, %d refits\n", ckpt.N, ckpt.RefitCount)
			}
		} else {
			j, err = campaign.CreateJournal(*journalPath, h)
			if err != nil {
				log.Fatal(err)
			}
		}
		j.Instrument(campaign.NewJournalMetrics(reg))
		defer j.Close()
		ckptPath := campaign.EstimatorCheckpointPath(*journalPath)
		cfg.OnRefit = func(st evt.StreamState) error {
			return campaign.SaveEstimatorCheckpoint(ckptPath, st)
		}
	}

	var recorded *campaign.Campaign
	if *record != "" {
		recorded = campaign.New(name, topo, *seed)
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = 1
		if poolSize > 1 {
			nWorkers = poolSize // keep every pooled testbed busy
		}
	}

	// Ctrl-C / SIGTERM stops the campaign at a measurement boundary; the
	// journal keeps everything completed so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res core.IterResult
	switch {
	case *batchSize > 0:
		// Batched measurement: chunks of draws resolve against the cache
		// tiers together and the unique misses run core-sharded on the
		// testbed's batch path. Commits land in draw order, so the journal
		// and the recorded campaign stay byte-identical to a serial run.
		var commits []core.CommitFunc
		if j != nil {
			commits = append(commits, j.Commit)
		}
		if recorded != nil {
			commits = append(commits, recorded.Commit)
		}
		if cached == nil {
			// No -cache: the batch path still needs the runner that knows
			// how to reach the source's batch capability; a nil cache
			// disables memoization but keeps the core sharding.
			cached = core.NewCachedContextRunner(runner, nil, identity)
		}
		if *retries > 0 || *timeout > 0 {
			fmt.Println("note: -retries/-timeout wrap each measurement individually, so -batch falls back to per-draw measurement under the resilient runner")
		}
		fmt.Printf("measuring in core-sharded batches of %d\n", *batchSize)
		res, err = core.IterateBatched(ctx, cfg, cached,
			core.BatchOptions{Size: *batchSize, Metrics: core.NewBatchMetrics(reg)},
			core.ChainCommits(commits...))
	case nWorkers > 1:
		// Parallel fan-out: the shared measurement stack feeds nWorkers
		// concurrent workers; completions commit to the journal and the
		// recorded campaign strictly in draw order, so everything written
		// is byte-identical to a serial run.
		var commits []core.CommitFunc
		if j != nil {
			commits = append(commits, j.Commit)
		}
		if recorded != nil {
			commits = append(commits, recorded.Commit)
		}
		pool, perr := core.NewReplicatedPool(runner, nWorkers)
		if perr != nil {
			log.Fatal(perr)
		}
		pm := core.NewPoolMetrics(reg, nWorkers)
		pool.Instrument(pm)
		if prog != nil {
			prog.poolm, prog.workers = pm, nWorkers
		}
		fmt.Printf("measuring with %d parallel workers\n", nWorkers)
		res, err = core.IterateParallel(ctx, cfg, pool, core.ChainCommits(commits...))
	default:
		if j != nil {
			runner = campaign.JournalRunner{Journal: j, Runner: runner}
		}
		if recorded != nil {
			runner = campaign.Recorder{Campaign: recorded, Runner: core.AsRunner(runner)}
		}
		res, err = core.IterateContext(ctx, cfg, runner)
	}
	prog.done()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !errors.Is(err, core.ErrBudgetExhausted) && !interrupted {
		log.Fatal(err)
	}
	if recorded != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := recorded.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d measurements to %s\n", recorded.Len(), *record)
	}
	if interrupted {
		fmt.Printf("interrupted after %d measurements", res.Samples)
		if *journalPath != "" {
			fmt.Printf("; re-run with -resume to continue from %s", *journalPath)
		}
		fmt.Println()
		os.Exit(3)
	}

	if *verbose {
		for _, step := range res.History {
			fmt.Printf("  n=%5d  best=%.6g  estimate=%.6g  CI=[%.6g, %.6g]  loss<=%.2f%%\n",
				step.Samples, step.Estimate.BestObserved, step.Estimate.Optimal,
				step.Estimate.Lo, step.Estimate.Hi, step.Estimate.HeadroomHiPct)
		}
	}

	fmt.Printf("executed %d random assignments\n", res.Samples)
	if n := len(res.Quarantined); n > 0 {
		fmt.Printf("quarantined %d assignment(s) whose measurements kept failing; they are excluded from the sample\n", n)
	}
	fmt.Printf("best assignment: %s\n", res.Best.Assignment)
	fmt.Printf("  measured performance:   %.6g PPS\n", res.Best.Perf)
	fmt.Printf("  estimated optimum:      %.6g PPS (0.95 CI [%.6g, %.6g])\n",
		res.Final.Optimal, res.Final.Lo, res.Final.Hi)
	fmt.Printf("  guaranteed loss bound:  %.2f%%\n", res.Final.HeadroomHiPct)
	if planner, err := core.NewPlanner(res.Final); err == nil {
		if prob, err := planner.ProbImprove(1000); err == nil {
			fmt.Printf("  P(1000 more samples improve the best): %.1f%%\n", prob*100)
		}
		if median, err := planner.MedianBestOfN(10 * res.Samples); err == nil {
			fmt.Printf("  median best if the campaign were 10x longer: %.6g PPS\n", median)
		}
	}
	if res.Satisfied {
		fmt.Printf("requirement met: loss <= %.2f%% with 0.95 confidence\n", *loss)
		return
	}
	fmt.Printf("sample budget exhausted before meeting the %.2f%% requirement\n", *loss)
	os.Exit(2)
}

// runClient talks to a campaignd service instead of measuring locally:
// -submit posts a campaign spec built from the usual flags and follows it
// to a terminal state, -query runs a predicate query over the service's
// promoted result table. Exit codes mirror the local campaign: 0 on
// completed, 2 when the budget ran out unsatisfied or the campaign ended
// non-completed.
func runClient(base, submit, query string, spec coord.Spec) {
	base = strings.TrimRight(base, "/")
	if submit == "" && query == "" {
		log.Fatal("-server needs -submit ID or -query EXPR")
	}

	if submit != "" {
		var st coord.Status
		if err := clientCall("POST", base+"/campaigns", spec, &st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted campaign %q to %s (testbed %s)\n", st.ID, base, st.Testbed)
		last := ""
		for !st.State.Terminal() && st.State != coord.StateFailed && st.State != coord.StatePaused {
			time.Sleep(250 * time.Millisecond)
			if err := clientCall("GET", base+"/campaigns/"+submit, nil, &st); err != nil {
				log.Fatal(err)
			}
			if line := st.Summary(); line != last {
				fmt.Println(line)
				last = line
			}
		}
		switch st.State {
		case coord.StateCompleted:
			if st.Satisfied {
				fmt.Printf("requirement met: loss <= %.2f%% with 0.95 confidence\n", spec.LossPct)
				return
			}
			fmt.Println("sample budget exhausted before meeting the requirement")
		case coord.StateFailed:
			fmt.Printf("campaign failed: %s\n", st.Err)
		default:
			fmt.Printf("campaign ended %s\n", st.State)
		}
		os.Exit(2)
	}

	var res struct {
		Rows  []coord.QueryResult `json:"rows"`
		Count int                 `json:"count"`
	}
	if err := clientCall("GET", base+"/query?q="+url.QueryEscape(query), nil, &res); err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%v [%v] %v: n=%v best=%v upb=%v gap=%v%% satisfied=%v\n",
			row["id"], row["status"], row["benchmark"], row["samples"],
			row["best"], row["upb"], row["gap_pct"], row["satisfied"])
	}
	fmt.Printf("%d row(s) match %q\n", res.Count, query)
}

// clientCall performs one JSON round-trip against campaignd, decoding the
// service's {"error": ...} body into a plain error on non-2xx statuses.
func clientCall(method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(raw))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s %s: %s", method, url, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
