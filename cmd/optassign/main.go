// Command optassign runs the paper's iterative statistical task-assignment
// algorithm (§5.3) against the simulated UltraSPARC T2 testbed: it keeps
// executing random assignments of the chosen benchmark until the best one
// found is — with 0.95 confidence — within the acceptable loss of the
// estimated optimal system performance.
//
// Usage:
//
//	optassign [-benchmark IPFwd-L1] [-instances 8] [-loss 2.5]
//	          [-ninit 1000] [-ndelta 100] [-max 12000] [-seed 1] [-v]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"optassign/internal/apps"
	"optassign/internal/campaign"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/remote"
	"optassign/internal/t2"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optassign: ")

	benchmark := flag.String("benchmark", "IPFwd-L1",
		"one of Aho-Corasick, IPFwd-L1, IPFwd-Mem, Packet-analyzer, Stateful, IPFwd-intadd, IPFwd-intmul")
	instances := flag.Int("instances", 8, "pipeline instances (3 threads each)")
	loss := flag.Float64("loss", 2.5, "acceptable performance loss vs the estimated optimum, percent")
	ninit := flag.Int("ninit", 1000, "initial sample size")
	ndelta := flag.Int("ndelta", 100, "sample increment per iteration")
	maxSamples := flag.Int("max", 12000, "sample budget")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print every iteration")
	record := flag.String("record", "", "write every measurement to this campaign file (JSON lines)")
	connect := flag.String("connect", "", "measure on a remote testbed served by cmd/measured at this address")
	flag.Parse()

	var (
		runner core.Runner
		topo   t2.Topology
		tasks  int
		name   string
	)
	if *connect != "" {
		client, err := remote.Dial(*connect)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		runner, topo, tasks, name = client, client.Topology(), client.Tasks(), client.Hello().Name
		fmt.Printf("remote testbed %q at %s: %d tasks on %s\n", name, *connect, tasks, topo)
	} else {
		app, err := apps.ByName(*benchmark, netgen.DefaultProfile())
		if err != nil {
			log.Fatal(err)
		}
		tb, err := netdps.NewTestbed(app, *instances, netdps.WithSeed(*seed))
		if err != nil {
			log.Fatal(err)
		}
		runner, topo, tasks, name = tb, tb.Machine.Topo, tb.TaskCount(), app.Name()
		fmt.Printf("benchmark %s: %d instances (%d tasks) on %s\n", name, *instances, tasks, topo)
	}

	cfg := core.IterConfig{
		Topo:          topo,
		Tasks:         tasks,
		AcceptLossPct: *loss,
		Ninit:         *ninit,
		Ndelta:        *ndelta,
		MaxSamples:    *maxSamples,
		Seed:          *seed,
	}
	var recorded *campaign.Campaign
	if *record != "" {
		recorded = campaign.New(name, topo, *seed)
		runner = campaign.Recorder{Campaign: recorded, Runner: runner}
	}
	res, err := core.Iterate(cfg, runner)
	if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
		log.Fatal(err)
	}
	if recorded != nil {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := recorded.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d measurements to %s\n", recorded.Len(), *record)
	}

	if *verbose {
		for _, step := range res.History {
			fmt.Printf("  n=%5d  best=%.6g  estimate=%.6g  CI=[%.6g, %.6g]  loss<=%.2f%%\n",
				step.Samples, step.Estimate.BestObserved, step.Estimate.Optimal,
				step.Estimate.Lo, step.Estimate.Hi, step.Estimate.HeadroomHiPct)
		}
	}

	fmt.Printf("executed %d random assignments\n", res.Samples)
	fmt.Printf("best assignment: %s\n", res.Best.Assignment)
	fmt.Printf("  measured performance:   %.6g PPS\n", res.Best.Perf)
	fmt.Printf("  estimated optimum:      %.6g PPS (0.95 CI [%.6g, %.6g])\n",
		res.Final.Optimal, res.Final.Lo, res.Final.Hi)
	fmt.Printf("  guaranteed loss bound:  %.2f%%\n", res.Final.HeadroomHiPct)
	if planner, err := core.NewPlanner(res.Final); err == nil {
		if prob, err := planner.ProbImprove(1000); err == nil {
			fmt.Printf("  P(1000 more samples improve the best): %.1f%%\n", prob*100)
		}
		if median, err := planner.MedianBestOfN(10 * res.Samples); err == nil {
			fmt.Printf("  median best if the campaign were 10x longer: %.6g PPS\n", median)
		}
	}
	if res.Satisfied {
		fmt.Printf("requirement met: loss <= %.2f%% with 0.95 confidence\n", *loss)
		return
	}
	fmt.Printf("sample budget exhausted before meeting the %.2f%% requirement\n", *loss)
	os.Exit(2)
}
