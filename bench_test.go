// Package optassign's root-level benchmarks regenerate each of the paper's
// tables and figures (one benchmark per artifact, per DESIGN.md §4) plus
// the ablation studies of DESIGN.md §5. Run them with
//
//	go test -bench=. -benchmem
//
// The b.N loop re-runs the complete experiment; reported ns/op is the cost
// of regenerating the artifact once.
package optassign

import (
	"context"
	"io"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/campaign"
	"optassign/internal/cas"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/exp"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/t2"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1()
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintTable1(io.Discard, rows)
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := exp.NewEnv(1)
		rows, err := exp.Figure1(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure1(io.Discard, rows)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := exp.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure2(io.Discard, curves)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := exp.NewEnv(1)
		r, err := exp.Figure3(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure3(io.Discard, r)
	}
}

func BenchmarkFigure45(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure45(1)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure45(io.Discard, r)
	}
}

func BenchmarkFigure6(b *testing.B) {
	env := exp.NewEnv(1) // sample collection is shared across iterations
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure6(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure6(io.Discard, r)
	}
}

func BenchmarkFigure7(b *testing.B) {
	env := exp.NewEnv(1)
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure7(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure7(io.Discard, r)
	}
}

// BenchmarkFigure10 through BenchmarkFigure12 share the estimation study;
// each regenerates its own projection.
func BenchmarkFigure10(b *testing.B) {
	env := exp.NewEnv(1)
	for i := 0; i < b.N; i++ {
		cells, err := exp.EstimationStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure10(io.Discard, cells)
	}
}

func BenchmarkFigure11(b *testing.B) {
	env := exp.NewEnv(1)
	for i := 0; i < b.N; i++ {
		cells, err := exp.EstimationStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure11(io.Discard, cells)
	}
}

func BenchmarkFigure12(b *testing.B) {
	env := exp.NewEnv(1)
	for i := 0; i < b.N; i++ {
		cells, err := exp.EstimationStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure12(io.Discard, cells)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := exp.NewEnv(1)
		cells, err := exp.Figure14(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintFigure14(io.Discard, cells)
	}
}

// --- Ablation benches (DESIGN.md §5) ------------------------------------

// sampleForAblation draws one 2000-measurement IPFwd-L1 sample.
func sampleForAblation(b *testing.B) []float64 {
	b.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rs, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), 2000, tb)
	if err != nil {
		b.Fatal(err)
	}
	return core.Perfs(rs)
}

// BenchmarkAblationThreshold compares the three threshold rules on the same
// sample: the fit-scored scan (default), the raw 5% cap, and the
// mean-excess linearity scan.
func BenchmarkAblationThreshold(b *testing.B) {
	perfs := sampleForAblation(b)
	for _, rule := range []struct {
		name string
		rule evt.ThresholdRule
	}{
		{"auto", evt.RuleAuto},
		{"maxfraction", evt.RuleMaxFraction},
		{"linearity", evt.RuleLinearityScan},
	} {
		b.Run(rule.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evt.SelectThreshold(perfs, evt.ThresholdOptions{Rule: rule.rule}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEstimator compares maximum-likelihood and
// method-of-moments GPD estimation.
func BenchmarkAblationEstimator(b *testing.B) {
	perfs := sampleForAblation(b)
	thr, err := evt.SelectThreshold(perfs, evt.ThresholdOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.FitGPD(thr.Exceedances); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("moments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.FitGPDMoments(thr.Exceedances); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pwm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.FitGPDPWM(thr.Exceedances); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationConfidenceInterval compares the Wilks likelihood-ratio
// interval construction against the parametric bootstrap (with both
// refitting estimators).
func BenchmarkAblationConfidenceInterval(b *testing.B) {
	perfs := sampleForAblation(b)
	thr, err := evt.SelectThreshold(perfs, evt.ThresholdOptions{})
	if err != nil {
		b.Fatal(err)
	}
	fit, err := evt.FitGPD(thr.Exceedances)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("wilks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.UPBConfidenceInterval(thr.U, thr.Exceedances, fit, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bootstrap-mle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.BootstrapUPB(thr.U, thr.Exceedances, fit, evt.BootstrapOptions{Replicates: 200, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bootstrap-pwm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.BootstrapUPB(thr.U, thr.Exceedances, fit, evt.BootstrapOptions{Replicates: 200, Seed: 1, Estimator: evt.FitGPDPWM}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionSchedulerStudy regenerates the schedulers-vs-optimum
// comparison table.
func BenchmarkExtensionSchedulerStudy(b *testing.B) {
	env := exp.NewEnv(1)
	for i := 0; i < b.N; i++ {
		cells, err := exp.SchedulerStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintSchedulerStudy(io.Discard, cells)
	}
}

// BenchmarkExtensionPredictorStudy regenerates the §5.4 integrated-approach
// table.
func BenchmarkExtensionPredictorStudy(b *testing.B) {
	env := exp.NewEnv(1)
	for i := 0; i < b.N; i++ {
		cells, err := exp.PredictorStudy(env)
		if err != nil {
			b.Fatal(err)
		}
		exp.PrintPredictorStudy(io.Discard, cells)
	}
}

// BenchmarkAblationEngine compares the analytic steady-state measurement
// against the discrete-event engine on the same assignment.
func BenchmarkAblationEngine(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tb.MeasureAnalytic(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("event-engine-2k-packets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tb.MeasureEngine(a, 2000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMeasurement is the hot path of the whole method: one random
// assignment generated and measured.
func BenchmarkMeasurement(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewStateful(), 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tb.MeasureAnalytic(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycleSim measures one full cycle-accurate measurement of a
// random case-study assignment (24 tasks, 200 packets per pipeline) — the
// hot loop of the event-driven simulator rewrite.
func BenchmarkCycleSim(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.MeasureCycle(a, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedSampling draws a duplicate-heavy random sample (one
// pipeline instance: 3 tasks on 64 contexts, a handful of canonical
// classes) through the analytic testbed three ways: uncached, through a
// cold canonical-form cache built per iteration, and through a warm one.
// The warm case is the steady state of a long campaign, where nearly every
// draw is a structural duplicate of an earlier one.
func BenchmarkCachedSampling(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 1)
	if err != nil {
		b.Fatal(err)
	}
	const draws = 500
	sample := func(b *testing.B, runner core.Runner) {
		rng := rand.New(rand.NewSource(6))
		if _, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), draws, runner); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sample(b, tb)
		}
	})
	b.Run("cache-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sample(b, core.NewCachedRunner(tb, core.NewCache(0, nil), tb.Identity()))
		}
	})
	b.Run("cache-warm", func(b *testing.B) {
		cached := core.NewCachedRunner(tb, core.NewCache(0, nil), tb.Identity())
		sample(b, cached) // populate every class before timing
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sample(b, cached)
		}
	})
}

// BenchmarkBatchSampling compares cold cycle-path sampling per assignment
// (one Sim built and run per draw) against the core-sharded batch path
// (one BatchSim, shared packet programs, arena strands, all CPUs). The
// ratio is the wall-clock speedup -batch buys a cold campaign; the CI gate
// TestBatchSamplingSpeedup pins it at >= 2x on multi-core runners.
func BenchmarkBatchSampling(b *testing.B) {
	tb, as := batchSamplingFixture(b)
	const packets = 200
	b.Run("per-assignment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, a := range as {
				if _, err := tb.MeasureCycle(a, packets); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, errs := tb.MeasureCycleBatch(as, packets)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func batchSamplingFixture(tb testing.TB) (*netdps.Testbed, []assign.Assignment) {
	tb.Helper()
	t, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	as := make([]assign.Assignment, 64)
	for i := range as {
		a, err := assign.RandomPermutation(rng, t.Machine.Topo, t.TaskCount())
		if err != nil {
			tb.Fatal(err)
		}
		as[i] = a
	}
	return t, as
}

// TestBatchSamplingSpeedup is the CI perf gate on the batch tentpole: on a
// multi-core runner, batched cold sampling must be at least 2x faster than
// per-assignment sampling over the identical draw set. Skipped on boxes
// too small for core sharding to pay (the CI runners have 4 vCPUs).
func TestBatchSamplingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the sharding gate, have %d", runtime.NumCPU())
	}
	tb, as := batchSamplingFixture(t)
	const packets, reps = 200, 3
	tb.MeasureCycleBatch(as[:1], packets) // build the shared BatchSim outside timing
	timeIt := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := timeIt(func() {
		for _, a := range as {
			if _, err := tb.MeasureCycle(a, packets); err != nil {
				t.Fatal(err)
			}
		}
	})
	batched := timeIt(func() {
		_, errs := tb.MeasureCycleBatch(as, packets)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if speedup := float64(serial) / float64(batched); speedup < 2 {
		t.Fatalf("batched sampling speedup %.2fx (serial %v, batched %v), gate requires >= 2x",
			speedup, serial, batched)
	}
}

// TestCycleMeasurementAllocBudget pins the cycle simulator's allocation
// count per measurement (satellite of the batch tentpole: the wake-heap
// and rollup buffers must stay hoisted). The budget is the seed's 52; a
// regression here means a reusable buffer went back to per-run make().
func TestCycleMeasurementAllocBudget(t *testing.T) {
	tb, as := batchSamplingFixture(t)
	a := as[0]
	if _, err := tb.MeasureCycle(a, 200); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := tb.MeasureCycle(a, 200); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 52 {
		t.Fatalf("MeasureCycle costs %.0f allocs, budget is 52 (seed baseline)", allocs)
	}
}

// BenchmarkDiskCachedSampling draws the duplicate-heavy sample of
// BenchmarkCachedSampling through the two-tier cache: cold (empty LRU,
// empty store), and warm-disk — a fresh process whose LRU is empty but
// whose store directory survives. The warm-disk case is the steady state
// of repeated campaigns over one -cache-dir.
func BenchmarkDiskCachedSampling(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 1)
	if err != nil {
		b.Fatal(err)
	}
	const draws = 500
	sample := func(b *testing.B, runner core.Runner) {
		rng := rand.New(rand.NewSource(6))
		if _, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), draws, runner); err != nil {
			b.Fatal(err)
		}
	}
	diskRunner := func(dir string) core.Runner {
		store, err := cas.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		c := core.NewCache(0, nil)
		c.AttachStore(store)
		return core.NewCachedRunner(tb, c, tb.Identity())
	}
	b.Run("disk-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(b.TempDir(), "store")
			b.StartTimer()
			sample(b, diskRunner(dir))
		}
	})
	b.Run("disk-warm", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "store")
		sample(b, diskRunner(dir)) // a prior process fills the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sample(b, diskRunner(dir)) // fresh LRU + fresh handle every run
		}
	})
}

// BenchmarkIterative runs the full §5.3 algorithm at a 5% target.
func BenchmarkIterative(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := core.IterConfig{
			Topo: tb.Machine.Topo, Tasks: tb.TaskCount(),
			AcceptLossPct: 5, Ninit: 1000, Ndelta: 100, MaxSamples: 12000, Seed: 1,
		}
		if _, err := core.Iterate(cfg, tb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignmentGenerators compares the paper-faithful rejection
// sampler with the Fisher-Yates generator at two machine loads.
func BenchmarkAssignmentGenerators(b *testing.B) {
	topo := t2.UltraSPARCT2()
	for _, tasks := range []int{24, 60} {
		rng := rand.New(rand.NewSource(4))
		if tasks <= 32 {
			b.Run(benchName("rejection", tasks), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := assign.Random(rng, topo, tasks); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(benchName("fisher-yates", tasks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assign.RandomPermutation(rng, topo, tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(kind string, tasks int) string {
	return kind + "-" + string(rune('0'+tasks/10)) + string(rune('0'+tasks%10)) + "tasks"
}

// BenchmarkPacketGeneration measures the NTGen-substitute throughput.
func BenchmarkPacketGeneration(b *testing.B) {
	gen, err := netgen.NewGenerator(netgen.DefaultProfile(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes += int64(len(gen.Next().Raw))
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkCampaignEndToEnd runs one complete journaled measurement round
// serially and through an 8-worker pool over a runner with a fixed
// per-measurement delay — the end-to-end campaign-time comparison behind
// the parallel fan-out (the real testbed costs ~1.5 s per measurement,
// §5.4; the ratio here is the wall-clock speedup N testbeds buy).
func BenchmarkCampaignEndToEnd(b *testing.B) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		b.Fatal(err)
	}
	delayed := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		time.Sleep(500 * time.Microsecond)
		return tb.MeasureAnalytic(a)
	})
	const draws = 64
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := campaign.CreateJournal(filepath.Join(b.TempDir(), "c.journal"),
				campaign.JournalHeader{Benchmark: "bench", Topo: tb.Machine.Topo, Tasks: tb.TaskCount(), Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			_, _, err = core.CollectSampleContext(context.Background(),
				rand.New(rand.NewSource(1)), tb.Machine.Topo, tb.TaskCount(), draws,
				campaign.JournalRunner{Journal: j, Runner: delayed})
			if err != nil {
				b.Fatal(err)
			}
			j.Close()
		}
	})
	b.Run("parallel-8", func(b *testing.B) {
		pool, err := core.NewReplicatedPool(delayed, 8)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			j, err := campaign.CreateJournal(filepath.Join(b.TempDir(), "c.journal"),
				campaign.JournalHeader{Benchmark: "bench", Topo: tb.Machine.Topo, Tasks: tb.TaskCount(), Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			_, _, err = core.CollectSampleParallel(context.Background(),
				rand.New(rand.NewSource(1)), tb.Machine.Topo, tb.TaskCount(), draws, pool, j.Commit)
			if err != nil {
				b.Fatal(err)
			}
			j.Close()
		}
	})
}
