module optassign

go 1.22
