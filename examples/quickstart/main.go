// Quickstart: estimate the optimal task assignment performance of a
// workload in ~40 lines.
//
// We run 8 instances of the IPFwd-L1 benchmark (24 threads) on the
// simulated UltraSPARC T2, measure 1000 random task assignments, and use
// the Extreme Value Theory estimator to bound the performance of the best
// possible assignment — without ever enumerating the ~10^26 possibilities.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"optassign/internal/apps"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/netdps"
)

func main() {
	log.SetFlags(0)

	// A testbed is anything that can measure an assignment; here it is the
	// simulated machine, on real hardware it would pin threads and count.
	testbed, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		log.Fatal(err)
	}

	// §3.1: how many random assignments do we need so that, with 99%
	// probability, at least one is among the best-performing 1%?
	n, err := core.RequiredSampleSize(1, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capturing a top-1%% assignment with 99%% probability needs %d samples; we run 5000\n", n)

	// Step 1: measure 5000 iid random assignments.
	rng := rand.New(rand.NewSource(42))
	results, err := core.CollectSample(rng, testbed.Machine.Topo, testbed.TaskCount(), 5000, testbed)
	if err != nil {
		log.Fatal(err)
	}

	// Steps 2-4: POT threshold, GPD fit, upper performance bound.
	est, err := core.EstimateOptimal(core.Perfs(results), evt.POTOptions{})
	if err != nil {
		log.Fatal(err)
	}

	best := results[core.Best(results)]
	fmt.Printf("best of 5000 random assignments: %.6g PPS\n", best.Perf)
	fmt.Printf("  %s\n", best.Assignment)
	fmt.Printf("estimated optimal performance:   %.6g PPS (0.95 CI [%.6g, %.6g])\n",
		est.Optimal, est.Lo, est.Hi)
	fmt.Printf("room left for improvement:       %.2f%% (conservative: %.2f%%)\n",
		est.HeadroomPct, est.HeadroomHiPct)
}
