// Workloadselect demonstrates the §7 extension of the method: on a
// processor with a single level of resource sharing, task *scheduling*
// reduces to workload *selection* — choosing which set of ready tasks to
// co-run — and the statistical approach applies unchanged: sample random
// workloads, measure them, and estimate the optimal workload's performance
// by EVT.
//
// We model one SMT core with eight hardware contexts (one sharing level), a
// pool of twenty candidate tasks with heterogeneous resource demands, and
// ask: how good is the best co-schedule of eight tasks, and how close do
// random co-schedules get?
//
// Run with:
//
//	go run ./examples/workloadselect
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"optassign/internal/evt"
	"optassign/internal/proc"
	"optassign/internal/t2"
)

// candidate is one ready-to-run task type in the pool.
type candidate struct {
	name   string
	demand proc.Demand
}

func main() {
	log.SetFlags(0)

	// One core, one pipeline, eight contexts: every co-running task shares
	// everything — a single sharing level, so only *which* tasks co-run
	// matters, not where they sit.
	machine := proc.UltraSPARCT2Machine()
	machine.Topo = t2.Topology{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 8}

	pool := taskPool()
	const coRun = 8

	// Measure a workload: throughput of the chosen 8 tasks co-running.
	measure := func(pick []int) float64 {
		tasks := make([]proc.Task, len(pick))
		placement := make([]int, len(pick))
		for i, idx := range pick {
			tasks[i] = proc.Task{Demand: pool[idx].demand, Group: i}
			placement[i] = i
		}
		res, err := machine.Solve(tasks, nil, placement)
		if err != nil {
			log.Fatal(err)
		}
		return res.TotalPPS
	}

	// Sample random workloads (uniform 8-subsets of the pool).
	rng := rand.New(rand.NewSource(11))
	const samples = 2000
	perfs := make([]float64, 0, samples)
	bestPerf, bestPick := math.Inf(-1), []int(nil)
	for i := 0; i < samples; i++ {
		pick := rng.Perm(len(pool))[:coRun]
		p := measure(pick)
		perfs = append(perfs, p)
		if p > bestPerf {
			bestPerf, bestPick = p, append([]int(nil), pick...)
		}
	}

	rep, err := evt.Analyze(perfs, evt.POTOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload selection on %s: choose %d of %d candidate tasks\n",
		machine.Topo, coRun, len(pool))
	fmt.Printf("random workloads sampled:   %d\n", samples)
	fmt.Printf("best sampled workload:      %.6g ops/s\n", bestPerf)
	fmt.Print("  tasks: ")
	for _, idx := range bestPick {
		fmt.Printf("%s ", pool[idx].name)
	}
	fmt.Println()
	fmt.Printf("estimated optimal workload: %.6g ops/s", rep.UPB.Point)
	if math.IsInf(rep.UPB.Hi, 1) {
		fmt.Printf(" (0.95 CI [%.6g, unbounded))\n", rep.UPB.Lo)
	} else {
		fmt.Printf(" (0.95 CI [%.6g, %.6g])\n", rep.UPB.Lo, rep.UPB.Hi)
	}
	fmt.Printf("room for improvement:       %.2f%%\n", rep.HeadroomPct)
	fmt.Println("\nthe same three steps — sample, measure, fit the tail — answered a")
	fmt.Println("scheduling question of a different shape, as §7 of the paper promises.")
}

// taskPool builds twenty heterogeneous candidates: compute-bound,
// memory-bound, cache-friendly and mixed, so co-schedule symbiosis matters.
func taskPool() []candidate {
	var pool []candidate
	mk := func(name string, serial, ieu, lsu, l1d, l2, mem float64) {
		var d proc.Demand
		d.Serial = serial
		d.Res[proc.IEU] = ieu
		d.Res[proc.LSU] = lsu
		d.Res[proc.L1D] = l1d
		d.Res[proc.L2] = l2
		d.Res[proc.MEM] = mem
		pool = append(pool, candidate{name: name, demand: d})
	}
	for i := 0; i < 5; i++ {
		mk(fmt.Sprintf("cpu%d", i), 50, 600+40*float64(i), 100, 100, 0, 0)
	}
	for i := 0; i < 5; i++ {
		mk(fmt.Sprintf("mem%d", i), 50, 150, 250, 80, 150, 300+30*float64(i))
	}
	for i := 0; i < 5; i++ {
		mk(fmt.Sprintf("cache%d", i), 50, 250, 200, 350+25*float64(i), 60, 0)
	}
	for i := 0; i < 5; i++ {
		mk(fmt.Sprintf("mix%d", i), 100, 350, 180, 180, 90, 100+20*float64(i))
	}
	return pool
}
