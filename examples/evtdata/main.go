// Evtdata shows the statistical core used stand-alone on external
// measurements — the way you would apply the method to numbers collected on
// a real machine (the paper's method needs nothing but the measured sample).
//
// We synthesize a "measurement campaign" whose true optimum we know
// (a bounded population with a GPD tail), hide the optimum from the
// estimator, and check how well the EVT machinery recovers it at several
// sample sizes.
//
// Run with:
//
//	go run ./examples/evtdata
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"optassign/internal/evt"
)

func main() {
	log.SetFlags(0)

	// Ground truth: performance bounded at exactly 120000 ops/s with a
	// GPD-shaped upper tail (shape −0.3). The estimator sees only samples.
	const trueOptimum = 120000.0
	tail := evt.GPD{Xi: -0.3, Sigma: 7000}
	rng := rand.New(rand.NewSource(2024))
	measure := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = trueOptimum - tail.Rand(rng)
		}
		return xs
	}

	fmt.Printf("true optimum (hidden from the estimator): %.6g ops/s\n\n", trueOptimum)
	fmt.Printf("%8s %12s %12s %28s %10s\n", "samples", "best seen", "estimate", "0.95 interval", "est. err")

	for _, n := range []int{500, 1000, 2000, 5000, 20000} {
		sample := measure(n)
		rep, err := evt.Analyze(sample, evt.POTOptions{})
		if err != nil {
			log.Fatalf("n=%d: %v", n, err)
		}
		hi := fmt.Sprintf("%.6g", rep.UPB.Hi)
		if math.IsInf(rep.UPB.Hi, 1) {
			hi = "unbounded"
		}
		fmt.Printf("%8d %12.6g %12.6g %28s %9.2f%%\n",
			n, rep.BestObs, rep.UPB.Point,
			fmt.Sprintf("[%.6g, %s]", rep.UPB.Lo, hi),
			(rep.UPB.Point-trueOptimum)/trueOptimum*100)
	}

	fmt.Println("\nthe point estimate converges on the hidden optimum and the interval")
	fmt.Println("tightens as the sample grows — no model of the system was needed.")
	fmt.Println("use cmd/evtfit to run the same analysis on your own measurement files.")
}
