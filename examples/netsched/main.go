// Netsched reproduces the industrial case study of §5.3: for every
// benchmark of the suite, run the iterative statistical algorithm until
// the best sampled assignment is — with 0.95 confidence — within the
// customer's acceptable loss of the estimated optimal performance, and
// compare the result with the naive and Linux-like baseline schedulers.
//
// Run with:
//
//	go run ./examples/netsched [-loss 5]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/sched"

	"optassign/internal/apps"
)

func main() {
	log.SetFlags(0)
	loss := flag.Float64("loss", 5, "acceptable performance loss, percent")
	flag.Parse()

	profile := netgen.DefaultProfile()
	fmt.Printf("case study: 8 instances per benchmark, acceptable loss %.1f%%\n\n", *loss)
	fmt.Printf("%-16s %10s %10s %12s %10s %8s\n",
		"benchmark", "naive", "linux-like", "statistical", "est. opt", "samples")

	for _, app := range apps.Suite(profile) {
		tb, err := netdps.NewTestbed(app, 8, netdps.WithProfile(profile))
		if err != nil {
			log.Fatal(err)
		}
		topo := tb.Machine.Topo

		// Baselines: one naive draw (averaged over a few seeds to be fair)
		// and the deterministic Linux-like balancer.
		var naive float64
		const naiveDraws = 25
		for seed := int64(0); seed < naiveDraws; seed++ {
			a, err := sched.Naive{Rng: rand.New(rand.NewSource(seed))}.Assign(topo, tb.TaskCount())
			if err != nil {
				log.Fatal(err)
			}
			p, err := tb.Measure(a)
			if err != nil {
				log.Fatal(err)
			}
			naive += p / naiveDraws
		}
		linuxA, err := sched.LinuxLike{}.Assign(topo, tb.TaskCount())
		if err != nil {
			log.Fatal(err)
		}
		linux, err := tb.Measure(linuxA)
		if err != nil {
			log.Fatal(err)
		}

		// The paper's algorithm.
		res, err := core.Iterate(core.IterConfig{
			Topo:          topo,
			Tasks:         tb.TaskCount(),
			AcceptLossPct: *loss,
			Ninit:         1000,
			Ndelta:        100,
			MaxSamples:    12000,
			Seed:          7,
		}, tb)
		if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
			log.Fatal(err)
		}

		fmt.Printf("%-16s %10.4g %10.4g %12.4g %10.4g %8d\n",
			app.Name(), naive, linux, res.Best.Perf, res.Final.Optimal, res.Samples)
	}
	fmt.Println("\nthe statistical assignment beats both baselines and comes with a")
	fmt.Println("confidence-backed bound on how far from optimal it can be.")
}
