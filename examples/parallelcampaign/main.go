// Parallelcampaign fans one measurement campaign out across a pool of
// measurement servers — the many-testbeds generalization of the paper's
// two-machine setup (§4) — and proves on the spot that parallelism is
// free: the parallel campaign measures the exact assignment sequence a
// serial campaign would, so its results (and its write-ahead journal)
// are identical, for any worker count.
//
// The §3.1 random sample is embarrassingly parallel — the n assignments
// are drawn up front from the seeded RNG, so they can execute anywhere in
// any order as long as results are reassembled in draw order. At the
// paper's ~1.5 s of testbed time per measurement (§5.4), a 3000-sample
// campaign costs 75 minutes on one testbed; N pooled testbeds divide the
// wall clock by ~N without touching the statistics.
//
// Run with:
//
//	go run ./examples/parallelcampaign [-servers 3] [-samples 600]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"time"

	"optassign/internal/apps"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/remote"
)

// measurementSeconds is the paper's per-assignment testbed time: ~1.5 s to
// process three million packets (§4.4).
const measurementSeconds = 1.5

func main() {
	log.SetFlags(0)
	servers := flag.Int("servers", 3, "measurement servers to start")
	samples := flag.Int("samples", 600, "campaign size (assignment draws)")
	flag.Parse()

	// --- The measurement machines: N testbeds behind TCP servers. -------
	// All must serve the same workload; DialPool verifies that.
	var addrs []string
	for i := 0; i < *servers; i++ {
		tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &remote.Server{Runner: tb, Topo: tb.Machine.Topo, Tasks: tb.TaskCount(),
			Name: fmt.Sprintf("testbed-%d", i+1)}
		go srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
	}

	// --- The controller: one pool over every server. --------------------
	pool, err := remote.DialPool(addrs, remote.PoolConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	fmt.Printf("pooled %d measurement servers: %s\n", pool.Size(), strings.Join(addrs, ", "))
	fmt.Printf("common workload: %d tasks on %s\n\n", pool.Tasks(), pool.Topology())

	// Work-stealing fan-out: one worker per server keeps every testbed
	// busy; a fast testbed simply absorbs more draws.
	workers, err := core.NewReplicatedPool(pool, pool.Size())
	if err != nil {
		log.Fatal(err)
	}

	topo, tasks := pool.Topology(), pool.Tasks()
	const seed = 7

	start := time.Now()
	parallel, _, err := core.CollectSampleParallel(context.Background(),
		rand.New(rand.NewSource(seed)), topo, tasks, *samples, workers, nil)
	if err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(start)
	fmt.Printf("parallel campaign: %d measurements across %d servers in %v\n",
		len(parallel), pool.Size(), parallelTime.Round(time.Millisecond))

	// --- The equivalence proof: re-run serially, compare. ----------------
	// One local testbed stands in for the serial baseline; remote and
	// local measurements agree because the testbed is deterministic.
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	serial, _, err := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(seed)), topo, tasks, *samples, core.AsContextRunner(tb))
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)
	if !reflect.DeepEqual(parallel, serial) {
		log.Fatal("parallel and serial campaigns differ — this must never happen")
	}
	fmt.Printf("serial re-run:     %d measurements on 1 testbed in %v\n", len(serial), serialTime.Round(time.Millisecond))
	fmt.Println("every assignment, measurement and ordering identical: parallelism changed nothing but the wall clock")

	// --- §5.4 testbed-time arithmetic. -----------------------------------
	oneTestbed := time.Duration(float64(*samples) * measurementSeconds * float64(time.Second))
	pooled := oneTestbed / time.Duration(pool.Size())
	fmt.Printf("\non real hardware (%.1f s per measurement, §5.4):\n", measurementSeconds)
	fmt.Printf("  %d samples on 1 testbed:  %v\n", *samples, oneTestbed.Round(time.Minute))
	fmt.Printf("  %d samples on %d testbeds: %v\n", *samples, pool.Size(), pooled.Round(time.Minute))
	fmt.Printf("the journal written under -workers N resumes identically under any other N\n")
}
