// Remotecampaign demonstrates the two-machine layout of the paper's
// industrial testbed (§4): a measurement server fronts the machine that
// executes assignments, and the statistical controller drives it over the
// network. Here both ends live in one process on a loopback socket; point
// the client at another host to split them for real (see cmd/measured).
//
// It also shows the §5.4 experimental-time arithmetic: every measurement
// costs ~1.5 s of testbed time on real hardware, so the campaign length is
// a budget decision — and the planner says what more budget would buy.
//
// To make the fault-tolerance stack visible, the wire here is hostile on
// purpose: a fault-injection proxy kills the connection every 250 frames,
// and the campaign still completes because the reconnecting client redials
// and the resilient wrapper retries the interrupted measurement.
//
// Run with:
//
//	go run ./examples/remotecampaign
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"optassign/internal/apps"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/faulty"
	"optassign/internal/netdps"
	"optassign/internal/remote"
)

// measurementSeconds is the paper's per-assignment testbed time: ~1.5 s to
// process three million packets (§4.4).
const measurementSeconds = 1.5

func main() {
	log.SetFlags(0)

	// --- The "measurement machine": testbed behind a TCP server. --------
	tb, err := netdps.NewTestbed(apps.NewStateful(), 8)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &remote.Server{Runner: tb, Topo: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: tb.App.Name()}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()

	// --- A deliberately unreliable network in between. ------------------
	proxy, err := faulty.NewProxy(l.Addr().String(), 250)
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()

	// --- The "controller machine": everything below uses only the wire. -
	client, err := remote.Dial(proxy.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("connected to remote testbed %q: %d tasks on %s\n",
		client.Hello().Name, client.Tasks(), client.Topology())

	// Retry dropped measurements with backoff; quarantine anything that
	// keeps failing instead of aborting the campaign.
	resilient := core.NewResilientRunner(client, core.ResilientConfig{
		MaxAttempts: 5,
		Timeout:     10 * time.Second,
		BaseDelay:   10 * time.Millisecond,
	})

	const n = 2000
	start := time.Now()
	rng := rand.New(rand.NewSource(7))
	results, skipped, err := core.CollectSampleContext(context.Background(), rng, client.Topology(), client.Tasks(), n, resilient)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the proxy cut the connection %d times; %d measurements quarantined, %d completed\n",
		proxy.Cuts(), len(skipped), len(results))
	est, err := core.EstimateOptimal(core.Perfs(results), evt.POTOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign: %d remote measurements in %v (simulated testbed)\n", n, time.Since(start).Round(time.Millisecond))
	fmt.Printf("on the real machine the same campaign costs ~%.0f minutes of testbed time\n",
		float64(n)*measurementSeconds/60)
	best := results[core.Best(results)]
	fmt.Printf("best observed:      %.6g PPS\n", best.Perf)
	fmt.Printf("estimated optimum:  %.6g PPS (0.95 CI [%.6g, %.6g])\n", est.Optimal, est.Lo, est.Hi)

	if planner, err := core.NewPlanner(est); err == nil {
		prob, err1 := planner.ProbImprove(2 * n)
		median, err2 := planner.MedianBestOfN(3 * n)
		if err1 == nil && err2 == nil {
			// Extending the campaign keeps the current best, so the
			// expected lift is the fresh median clamped from below.
			gain := (median - best.Perf) / best.Perf * 100
			if gain < 0 {
				gain = 0
			}
			fmt.Printf("a 3x longer campaign (~%.0f more minutes): P(improve) = %.0f%%, median lift ≈ %.2f%% — ",
				float64(2*n)*measurementSeconds/60, prob*100, gain)
			if gain < 0.5 {
				fmt.Println("not worth the testbed time.")
			} else {
				fmt.Println("possibly worth it.")
			}
		}
	}
}
